"""The replicated lookup cluster: shard maps, WAL shipping, failover, chaos.

Four layers of coverage:

1. **Shard maps** — skew-aware splitting, the covering-route rule
   (per-shard LPM must equal global LPM), persistence, validation.
2. **Replication in-process** — checkpoint sync, live tail shipping
   through real sockets, chained replicas, stale-refusal, promotion,
   retargeting, watermark-divergence re-sync, and the router's
   endpoint failover.
3. **Shutdown durability** — the ``serve --journal`` SIGTERM regression:
   acknowledged updates buffered by ``--fsync-every`` batching must
   reach disk before exit.
4. **Cluster chaos** (subprocess sweep) — one primary and two replica
   processes under a 2000-update stream; a replica is SIGKILLed and
   restarted mid-stream, then the *primary* is SIGKILLed, a survivor is
   elected and promoted, and the stream finishes against it.  Every
   surviving node must converge to the exact in-process oracle state
   (zero misroutes over the wire, byte-identical recovered compiles)
   within a bounded catch-up window.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.cluster import (
    ClusterRouter,
    Replica,
    build_shard_map,
    naive_shard_map,
    replication,
    shard_balance,
    shard_rib,
)
from repro.cluster.router import FailoverMonitor, RouterConfig, elect_and_promote
from repro.cluster.shard import Shard, ShardMap
from repro.core.poptrie import Poptrie
from repro.data.updates import generate_update_stream
from repro.errors import ClusterError
from repro.net.prefix import Prefix
from repro.net.rib import Rib
from repro.parallel.image import structure_to_bytes
from repro.robust.journal import Journal, encode_update, recover
from repro.robust.txn import TransactionalPoptrie
from repro.server import protocol
from repro.server.loadgen import _Connection

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_DIR = os.path.dirname(TESTS_DIR)

SERVING_RE = re.compile(
    r"serving on ([\d.]+):(\d+), replication on ([\d.]+):(\d+)"
)


def base_rib(n_routes: int = 260, seed: int = 1234) -> Rib:
    """A deterministic starting table; called twice for independent copies."""
    rng = random.Random(seed)
    rib = Rib()
    rib.insert(Prefix.parse("0.0.0.0/0"), 9)
    seen = {(0, 0)}
    while len(rib) < n_routes:
        length = rng.randint(8, 28)
        value = rng.getrandbits(32) & ((0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF)
        if (value, length) in seen:
            continue
        seen.add((value, length))
        rib.insert(Prefix(value, length), rng.randint(1, 63))
    return rib


def subprocess_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(REPO_DIR, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


def route_set(rib: Rib):
    return {(p.value, p.length, p.width, hop) for p, hop in rib.routes()}


def seed_journal(directory: str, rib: Rib) -> None:
    os.makedirs(directory, exist_ok=True)
    with Journal(directory) as journal:
        journal.checkpoint(rib)


async def wait_for(predicate, timeout: float = 10.0, what: str = "condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {what}")
        await asyncio.sleep(0.02)


async def wire_request(host, port, opcode, keys=(), updates=(), timeout=30.0):
    """One request over a fresh pipelined client connection."""
    conn = _Connection()
    conn.host, conn.port = host, int(port)
    await conn.ensure_open()
    try:
        return await conn.request(
            opcode, keys, updates=updates, timeout=timeout
        )
    finally:
        await conn.close()


def free_port() -> int:
    """A port that was just free — connecting to it refuses immediately."""
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# ---------------------------------------------------------------------------
# shard maps
# ---------------------------------------------------------------------------


class TestShardMap:
    def test_naive_map_tiles_gaplessly(self):
        shard_map = naive_shard_map(32, 7)
        assert len(shard_map) == 7
        assert shard_map.shards[0].low == 0
        assert shard_map.shards[-1].high == (1 << 32) - 1
        for left, right in zip(shard_map.shards, shard_map.shards[1:]):
            assert right.low == left.high + 1
        assert shard_map.shard_index(0) == 0
        assert shard_map.shard_index((1 << 32) - 1) == 6

    def test_skew_aware_cuts_balance_routes(self):
        # A heavily skewed table: most routes bunched in 10.0.0.0/8.
        rng = random.Random(3)
        rib = Rib()
        seen = set()
        while len(rib) < 300:
            if rng.random() < 0.8:
                value = (10 << 24) | rng.getrandbits(16) << 8
                length = 24
            else:
                length = rng.randint(8, 24)
                value = rng.getrandbits(32) & (
                    (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
                )
            if (value, length) in seen:
                continue
            seen.add((value, length))
            rib.insert(Prefix(value, length), 1)
        skewed = shard_balance(rib, build_shard_map(rib, 4))
        naive = shard_balance(rib, naive_shard_map(32, 4))
        assert max(skewed) - min(skewed) < max(naive) - min(naive)
        assert max(skewed) <= len(rib) / 4 * 1.5

    def test_per_shard_lpm_equals_global_lpm(self):
        """The covering-route rule: shard_rib duplicates covering routes
        so a shard answers exactly like the global table."""
        rib = base_rib(200, seed=5)
        shard_map = build_shard_map(rib, 4)
        global_trie = Poptrie.from_rib(rib)
        shard_tries = [
            Poptrie.from_rib(shard_rib(rib, shard))
            for shard in shard_map.shards
        ]
        rng = random.Random(17)
        keys = [rng.getrandbits(32) for _ in range(3000)]
        keys += [p.value for p, _ in rib.routes()]
        for key in keys:
            index = shard_map.shard_index(key)
            assert shard_tries[index].lookup(key) == global_trie.lookup(key)

    def test_save_load_roundtrip(self, tmp_path):
        shard_map = build_shard_map(
            base_rib(120, seed=8),
            3,
            endpoint_sets=[
                ["127.0.0.1:4000", "127.0.0.1:4001"],
                ["127.0.0.1:4001"],
                ["127.0.0.1:4002", "127.0.0.1:4000"],
            ],
        )
        path = str(tmp_path / "map.json")
        shard_map.save(path)
        loaded = ShardMap.load(path)
        assert loaded == shard_map
        assert loaded.shards[0].endpoints == (
            "127.0.0.1:4000", "127.0.0.1:4001",
        )

    def test_validation_refuses_bad_maps(self, tmp_path):
        with pytest.raises(ClusterError, match="gaplessly"):
            ShardMap(32, (Shard(0, 10), Shard(12, (1 << 32) - 1)))
        with pytest.raises(ClusterError, match="cover"):
            ShardMap(32, (Shard(0, 10),))
        with pytest.raises(ClusterError, match="width"):
            ShardMap(16, (Shard(0, (1 << 16) - 1),))
        with pytest.raises(ClusterError, match="no shards"):
            ShardMap(32, ())
        with pytest.raises(ClusterError, match="endpoint"):
            Shard(0, 5, ("nonsense",))
        with pytest.raises(ClusterError, match="endpoint sets"):
            naive_shard_map(32, 2).with_endpoints([["127.0.0.1:1"]])
        bad = tmp_path / "bad.json"
        bad.write_text('{"format": "something-else"}')
        with pytest.raises(ClusterError, match="not a repro-shardmap-v1"):
            ShardMap.load(str(bad))

    def test_router_requires_endpoints(self):
        with pytest.raises(ClusterError, match="no endpoints"):
            ClusterRouter(naive_shard_map(32, 2))


# ---------------------------------------------------------------------------
# replication, promotion and routing (in-process, real sockets)
# ---------------------------------------------------------------------------


async def start_node(directory, *, rib=None, primary=None, name="node", **kw):
    if rib is not None:
        seed_journal(directory, rib)
    node = Replica(directory, primary=primary, name=name, **kw)
    serve, repl = await node.start()
    return node, serve, repl


class TestReplication:
    def test_checkpoint_sync_update_stream_and_fingerprint(self, tmp_path):
        async def scenario():
            rib = base_rib(150, seed=2)
            primary, serve, repl = await start_node(
                str(tmp_path / "p"), rib=rib, name="p"
            )
            replica, rserve, _ = await start_node(
                str(tmp_path / "r"), primary=repl, name="r"
            )
            await wait_for(
                lambda: replica.txn is not None
                and len(replica.txn.rib) == len(rib),
                what="checkpoint sync",
            )
            # Live tail shipping: write through the primary's wire API.
            updates = generate_update_stream(base_rib(150, seed=2), 60, seed=4)
            response = await wire_request(
                *serve, protocol.OP_UPDATE, updates=updates
            )
            report = json.loads(response.text)
            assert report["seqno"] == primary.applied_seqno
            await wait_for(
                lambda: replica.applied_seqno == primary.applied_seqno,
                what="tail catch-up",
            )
            assert replica.resyncs == 0
            assert route_set(replica.txn.rib) == route_set(primary.txn.rib)
            assert structure_to_bytes(
                Poptrie.from_rib(replica.txn.rib)
            ) == structure_to_bytes(Poptrie.from_rib(primary.txn.rib))
            # The replica's lookup server answers from the shipped state.
            probe = [p.value for p, _ in primary.txn.rib.routes()][:16]
            answer = await wire_request(*rserve, protocol.OP_LOOKUP4, probe)
            oracle = Poptrie.from_rib(primary.txn.rib)
            assert list(answer.results) == [oracle.lookup(k) for k in probe]
            # Replicas refuse writes.
            refused = await wire_request(
                *rserve, protocol.OP_UPDATE, updates=updates[:1]
            )
            assert refused.status != protocol.STATUS_OK
            await replica.stop()
            await primary.stop()

        asyncio.run(scenario())

    def test_chained_replica_follows_a_replica(self, tmp_path):
        async def scenario():
            rib = base_rib(100, seed=6)
            primary, serve, repl = await start_node(
                str(tmp_path / "p"), rib=rib, name="p"
            )
            middle, _, mid_repl = await start_node(
                str(tmp_path / "m"), primary=repl, name="m"
            )
            await wait_for(
                lambda: middle.txn is not None
                and len(middle.txn.rib) == len(rib),
                what="middle checkpoint sync",
            )
            leaf, _, _ = await start_node(
                str(tmp_path / "l"), primary=mid_repl, name="l"
            )
            updates = generate_update_stream(base_rib(100, seed=6), 40, seed=9)
            await wire_request(*serve, protocol.OP_UPDATE, updates=updates)
            target = primary.applied_seqno
            await wait_for(
                lambda: leaf.applied_seqno == target,
                what="chained catch-up",
            )
            assert route_set(leaf.txn.rib) == route_set(primary.txn.rib)
            assert leaf.resyncs == 0
            for node in (leaf, middle, primary):
                await node.stop()

        asyncio.run(scenario())

    def test_stale_refusal_election_and_retarget(self, tmp_path):
        async def scenario():
            rib = base_rib(80, seed=11)
            updates = generate_update_stream(base_rib(80, seed=11), 20, seed=3)
            # Two standalone nodes whose journals diverge in depth:
            # ahead has applied 20, behind only 12.  Both are replicas
            # of a dead primary — pure election candidates.
            for name, depth in (("ahead", 20), ("behind", 12)):
                d = str(tmp_path / name)
                seed_journal(d, rib)
                with Journal(d) as journal:
                    for update in updates[:depth]:
                        journal.append(update)
            dead = ("127.0.0.1", free_port())
            ahead, _, ahead_repl = await start_node(
                str(tmp_path / "ahead"), primary=dead, name="ahead"
            )
            behind, _, behind_repl = await start_node(
                str(tmp_path / "behind"), primary=dead, name="behind"
            )
            # A stale candidate refuses promotion outright.
            refusal = await replication.request_promote(
                *behind_repl, min_seqno=ahead.applied_seqno
            )
            assert refusal["promoted"] is False
            assert "stale" in refusal["reason"]
            assert behind.role == "replica"
            # The election picks the deepest journal and retargets the rest.
            outcome = await elect_and_promote([
                f"{behind_repl[0]}:{behind_repl[1]}",
                f"{ahead_repl[0]}:{ahead_repl[1]}",
            ])
            assert outcome["promoted"] == f"{ahead_repl[0]}:{ahead_repl[1]}"
            assert outcome["promoted_seqno"] == 20
            assert outcome["min_seqno"] == 12
            assert ahead.role == "primary"
            assert behind.primary == ahead_repl
            # The retargeted node catches up from the new primary.
            await wait_for(
                lambda: behind.applied_seqno == 20, what="retarget catch-up"
            )
            assert route_set(behind.txn.rib) == route_set(ahead.txn.rib)
            await behind.stop()
            await ahead.stop()

        asyncio.run(scenario())

    def test_primary_behind_replica_forces_resync(self, tmp_path):
        async def scenario():
            # The replica has durable history to seqno 15; its new
            # primary starts from a different, empty timeline (seqno 0).
            # The heartbeat watermark exposes the divergence and the
            # replica must re-sync to the primary's state, not serve a
            # mix of both histories.
            old_rib = base_rib(60, seed=21)
            rdir = str(tmp_path / "r")
            seed_journal(rdir, old_rib)
            with Journal(rdir) as journal:
                for update in generate_update_stream(
                    base_rib(60, seed=21), 15, seed=2
                ):
                    journal.append(update)
            new_rib = base_rib(90, seed=22)
            primary, _, repl = await start_node(
                str(tmp_path / "p"), rib=new_rib, name="p"
            )
            replica, _, _ = await start_node(rdir, primary=repl, name="r")
            assert replica.applied_seqno == 15
            await wait_for(
                lambda: replica.resyncs > 0
                and route_set(replica.txn.rib) == route_set(new_rib),
                what="divergence re-sync",
            )
            assert replica.applied_seqno == primary.applied_seqno == 0
            await replica.stop()
            await primary.stop()

        asyncio.run(scenario())

    def test_router_fails_over_and_reports_down(self, tmp_path):
        async def scenario():
            rib = base_rib(100, seed=31)
            node, serve, _ = await start_node(
                str(tmp_path / "p"), rib=rib, name="p"
            )
            dead = f"127.0.0.1:{free_port()}"
            live = f"{serve[0]}:{serve[1]}"
            shard_map = build_shard_map(
                rib, 2, endpoint_sets=[[dead, live], [live, dead]]
            )
            router = ClusterRouter(
                shard_map,
                RouterConfig(request_timeout=5.0, retry_pause_s=0.01),
            )
            oracle = Poptrie.from_rib(rib)
            rng = random.Random(12)
            keys = [rng.getrandbits(32) for _ in range(64)]
            results = await router.lookup_batch(keys)
            assert results == [oracle.lookup(k) for k in keys]
            # The dead endpoint was tried (it leads shard #0) and marked.
            assert router.endpoint_errors > 0
            assert dead in router.describe()["down"]
            probes = await router.probe()
            assert probes[dead] is None
            assert probes[live] is not None
            await router.close()
            await node.stop()

        asyncio.run(scenario())

    def test_router_raises_when_shard_exhausted(self):
        async def scenario():
            dead = f"127.0.0.1:{free_port()}"
            shard_map = naive_shard_map(32, 1).with_endpoints([[dead]])
            router = ClusterRouter(
                shard_map,
                RouterConfig(
                    attempts_per_shard=2,
                    request_timeout=0.5,
                    retry_pause_s=0.01,
                ),
            )
            with pytest.raises(ClusterError, match="unreachable"):
                await router.lookup_batch([1, 2, 3])
            await router.close()

        asyncio.run(scenario())

    def test_failover_monitor_state_machine(self, tmp_path):
        async def scenario():
            rib = base_rib(70, seed=41)
            primary, _, repl = await start_node(
                str(tmp_path / "p"), rib=rib, name="p"
            )
            replica, _, replica_repl = await start_node(
                str(tmp_path / "r"), primary=repl, name="r"
            )
            await wait_for(
                lambda: len(replica.txn.rib) == len(rib), what="sync"
            )
            monitor = FailoverMonitor(
                f"{repl[0]}:{repl[1]}",
                [f"{replica_repl[0]}:{replica_repl[1]}"],
                probe_timeout=1.0,
                misses_to_fail=2,
            )
            assert await monitor.check_once() == "healthy"
            await primary.stop()
            assert await monitor.check_once() == "suspect"
            assert await monitor.check_once() == "failed_over"
            assert monitor.promotion is not None
            assert replica.role == "primary"
            # Once failed over, the monitor stays put.
            assert await monitor.check_once() == "failed_over"
            await replica.stop()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# replication frame hardening (the malformed-frame matrix)
# ---------------------------------------------------------------------------


def _corrupt_checkpoint_frame() -> bytes:
    good = replication.encode_checkpoint(5, b"table image bytes")
    return good[:-1] + bytes([good[-1] ^ 0xFF])  # flip one image byte


class TestFrameHardening:
    """Every malformation is a typed ClusterError — nothing escapes as a
    raw struct.error, UnicodeDecodeError, or JSONDecodeError."""

    @pytest.mark.parametrize(
        "payload, match",
        [
            (b"", "empty"),
            (bytes([99]), "unknown replication frame type 99"),
            (bytes([replication.FRAME_HELLO]) + b"\x00\x01", "truncated"),
            (bytes([replication.FRAME_HEARTBEAT]), "truncated"),
            (bytes([replication.FRAME_ACK]) + b"\x00" * 3, "truncated"),
            (bytes([replication.FRAME_PROMOTE]) + b"\x00" * 7, "truncated"),
            (bytes([replication.FRAME_CHECKPOINT]) + b"\x00" * 4, "truncated"),
            (bytes([replication.FRAME_RECORD]) + b"\x00" * 6, "truncated"),
            (bytes([replication.FRAME_RETARGET]) + b"\x00", "truncated"),
            (_corrupt_checkpoint_frame(), "fails its CRC"),
            (
                replication.encode_record(1, 0, b"\x00" * 24)[:-4],
                "payload bytes",
            ),
            (bytes([replication.FRAME_QUERY]) + b"junk", "carries a body"),
            (bytes([replication.FRAME_INFO]) + b"not json", "malformed"),
            (bytes([replication.FRAME_INFO]) + b"\xff\xfe", "malformed"),
        ],
    )
    def test_malformed_frames_raise_typed_errors(self, payload, match):
        with pytest.raises(ClusterError, match=match):
            replication.decode_frame(payload)

    def test_oversized_frame_is_refused(self):
        frame = replication.encode_heartbeat(7) + b"\x00" * 64
        with pytest.raises(ClusterError, match="oversized"):
            replication.decode_frame(frame, max_frame=32)

    def test_ack_frame_roundtrip(self):
        kind, operands = replication.decode_frame(
            replication.encode_ack((1 << 50) + 3)
        )
        assert kind == replication.FRAME_ACK
        assert operands == ((1 << 50) + 3,)


# ---------------------------------------------------------------------------
# quorum-acknowledged writes (FRAME_ACK, wait_quorum, the durability gate)
# ---------------------------------------------------------------------------


class TestQuorum:
    def test_acks_flow_and_quorum_gates_the_write(self, tmp_path):
        """A min_insync=1 primary holds each OP_UPDATE ack until the
        replica acks the batch's seqno over the replication channel."""
        async def scenario():
            rib = base_rib(90, seed=61)
            primary, serve, repl = await start_node(
                str(tmp_path / "p"), rib=rib, name="p",
                quorum=replication.QuorumConfig(min_insync=1, timeout_s=5.0),
            )
            replica, _, _ = await start_node(
                str(tmp_path / "r"), primary=repl, name="r"
            )
            await wait_for(
                lambda: len(replica.txn.rib) == len(rib), what="sync"
            )
            updates = generate_update_stream(base_rib(90, seed=61), 30, seed=2)
            response = await wire_request(
                *serve, protocol.OP_UPDATE, updates=updates
            )
            assert response.status == protocol.STATUS_OK
            report = json.loads(response.text)
            assert "quorum" not in report  # met, not degraded
            seqno = report["seqno"]
            # The ack already covered the batch when the client saw OK.
            assert primary.publisher.insync_count(seqno) >= 1
            assert max(
                primary.publisher.acked_watermarks().values()
            ) >= seqno
            assert replica.acks_sent > 0
            assert replica.applied_seqno == seqno
            gate = primary.server.quorum
            assert gate.describe()["timeouts"] == 0
            # info() now names both endpoints (the monitor's shard-map
            # rewrite reads "serve" off survivors).
            info = primary.info()
            assert info["serve"] == f"{serve[0]}:{serve[1]}"
            assert info["repl"] == f"{repl[0]}:{repl[1]}"
            await replica.stop()
            await primary.stop()

        asyncio.run(scenario())

    def test_quorum_timeout_sheds_retryably(self, tmp_path):
        """No subscribers: the write applies + journals locally but the
        client gets the retryable STATUS_QUORUM_TIMEOUT."""
        async def scenario():
            rib = base_rib(60, seed=62)
            primary, serve, _ = await start_node(
                str(tmp_path / "p"), rib=rib, name="p",
                quorum=replication.QuorumConfig(
                    min_insync=1, timeout_s=0.2, on_timeout="shed"
                ),
            )
            updates = generate_update_stream(base_rib(60, seed=62), 5, seed=3)
            response = await wire_request(
                *serve, protocol.OP_UPDATE, updates=updates
            )
            assert response.status == protocol.STATUS_QUORUM_TIMEOUT
            assert response.status in protocol.RETRYABLE_STATUSES
            report = json.loads(response.text)
            assert report["quorum"] == "timeout"
            assert report["applied"] == 5  # applied locally regardless
            assert primary.applied_seqno == report["seqno"]
            assert primary.server.stats.shed_quorum == 1
            assert primary.server.describe()["shed_quorum"] == 1
            await primary.stop()

        asyncio.run(scenario())

    def test_degrade_mode_flips_gauge_and_recovers(self, tmp_path):
        """on_timeout='degrade': writes keep flowing asynchronously with
        the degraded flag up; a returning quorum clears it."""
        async def scenario():
            rib = base_rib(60, seed=63)
            primary, serve, repl = await start_node(
                str(tmp_path / "p"), rib=rib, name="p",
                quorum=replication.QuorumConfig(
                    min_insync=1, timeout_s=0.2, on_timeout="degrade"
                ),
            )
            updates = generate_update_stream(base_rib(60, seed=63), 20, seed=4)
            # No replica yet: the first write degrades instead of failing.
            response = await wire_request(
                *serve, protocol.OP_UPDATE, updates=updates[:5]
            )
            assert response.status == protocol.STATUS_OK
            assert json.loads(response.text)["quorum"] == "degraded"
            gate = primary.server.quorum
            assert gate.degraded is True
            # A replica arrives and catches up; the next write recovers.
            replica, _, _ = await start_node(
                str(tmp_path / "r"), primary=repl, name="r"
            )
            await wait_for(
                lambda: replica.applied_seqno == primary.applied_seqno,
                what="replica catch-up",
            )
            await wait_for(
                lambda: primary.publisher.insync_count(
                    primary.applied_seqno
                ) >= 1,
                what="replica ack",
            )
            response = await wire_request(
                *serve, protocol.OP_UPDATE, updates=updates[5:10]
            )
            assert response.status == protocol.STATUS_OK
            assert "quorum" not in json.loads(response.text)
            assert gate.degraded is False
            await replica.stop()
            await primary.stop()

        asyncio.run(scenario())

    def test_wait_quorum_counts_distinct_subscribers(self, tmp_path):
        """min_insync=2 with one replica: wait_quorum times out; the
        second replica's ack completes it."""
        async def scenario():
            rib = base_rib(50, seed=64)
            primary, _, repl = await start_node(
                str(tmp_path / "p"), rib=rib, name="p"
            )
            first, _, _ = await start_node(
                str(tmp_path / "r1"), primary=repl, name="r1"
            )
            await wait_for(
                lambda: primary.publisher.insync_count(
                    primary.applied_seqno
                ) >= 1,
                what="first replica ack",
            )
            seqno = primary.applied_seqno
            assert await primary.publisher.wait_quorum(seqno, 2, 0.2) is False
            second, _, _ = await start_node(
                str(tmp_path / "r2"), primary=repl, name="r2"
            )
            assert await primary.publisher.wait_quorum(seqno, 2, 10.0) is True
            assert len(primary.publisher.acked_watermarks()) == 2
            for node in (second, first, primary):
                await node.stop()

        asyncio.run(scenario())

    def test_quorum_config_validation(self):
        with pytest.raises(ClusterError, match="min_insync"):
            replication.QuorumConfig(min_insync=-1)
        with pytest.raises(ClusterError, match="timeout"):
            replication.QuorumConfig(timeout_s=0)
        with pytest.raises(ClusterError, match="on_timeout"):
            replication.QuorumConfig(on_timeout="explode")


# ---------------------------------------------------------------------------
# election determinism and the failover monitor daemon
# ---------------------------------------------------------------------------


class TestElectionAndMonitor:
    def test_election_tie_break_is_deterministic(self, monkeypatch):
        """Watermark ties promote the lexicographically-lowest endpoint,
        whatever order the candidates were listed in."""
        import repro.cluster.router as router_module

        seqnos = {
            "127.0.0.1:7003": 30,
            "127.0.0.1:7001": 30,  # tied with :7003 — must win
            "127.0.0.1:7002": 12,
        }

        async def fake_query(host, port, timeout=5.0):
            return {"applied_seqno": seqnos[f"{host}:{port}"]}

        promotions = []

        async def fake_promote(host, port, min_seqno, timeout=30.0):
            promotions.append((f"{host}:{port}", min_seqno))
            return {"promoted": True}

        async def fake_retarget(host, port, nh, np, timeout=30.0):
            return {"retargeted": True}

        monkeypatch.setattr(router_module.replication, "query_info", fake_query)
        monkeypatch.setattr(
            router_module.replication, "request_promote", fake_promote
        )
        monkeypatch.setattr(
            router_module.replication, "request_retarget", fake_retarget
        )
        endpoints = list(seqnos)
        for ordering in (endpoints, list(reversed(endpoints))):
            outcome = asyncio.run(elect_and_promote(ordering))
            assert outcome["promoted"] == "127.0.0.1:7001"
            # min_seqno covers the tied loser: it must not refuse.
            assert outcome["min_seqno"] == 30
        assert [winner for winner, _ in promotions] == ["127.0.0.1:7001"] * 2

    def test_monitor_flap_damping_never_promotes(self, monkeypatch):
        """A primary that alternates probe fail/success oscillates
        healthy<->suspect forever; misses never accumulate to down."""
        import repro.cluster.router as router_module

        flaps = {"count": 0}

        async def flappy_query(host, port, timeout=5.0):
            flaps["count"] += 1
            if flaps["count"] % 2 == 1:
                raise ClusterError("probe miss")
            return {"applied_seqno": 1}

        async def must_not_promote(*args, **kwargs):
            raise AssertionError("flapping primary was promoted")

        monkeypatch.setattr(
            router_module.replication, "query_info", flappy_query
        )
        monkeypatch.setattr(
            router_module, "elect_and_promote", must_not_promote
        )
        monitor = FailoverMonitor(
            "127.0.0.1:7001", ["127.0.0.1:7002"], misses_to_fail=2
        )

        async def oscillate():
            states = [await monitor.check_once() for _ in range(12)]
            return states

        states = asyncio.run(oscillate())
        assert states == ["suspect", "healthy"] * 6
        assert monitor.state == "healthy"  # recovery, not a promotion
        assert monitor.promotion is None
        transitions = [
            (e["from"], e["to"])
            for e in monitor.events
            if e["event"] == "transition"
        ]
        assert ("suspect", "down") not in transitions
        assert ("healthy", "suspect") in transitions
        assert ("suspect", "healthy") in transitions

    def test_monitor_daemon_promotes_and_republishes_shard_map(
        self, tmp_path
    ):
        """The daemon loop end to end: sustained primary loss drives the
        election, and the shard map is atomically rewritten to the
        survivors' serve endpoints (promoted node first, dead dropped)."""
        async def scenario():
            rib = base_rib(70, seed=65)
            primary, pserve, repl = await start_node(
                str(tmp_path / "p"), rib=rib, name="p"
            )
            replica, rserve, rrepl = await start_node(
                str(tmp_path / "r"), primary=repl, name="r"
            )
            await wait_for(
                lambda: len(replica.txn.rib) == len(rib), what="sync"
            )
            pserve_str = f"{pserve[0]}:{pserve[1]}"
            rserve_str = f"{rserve[0]}:{rserve[1]}"
            map_path = str(tmp_path / "map.json")
            naive_shard_map(32, 2).with_endpoints(
                [[pserve_str, rserve_str]] * 2
            ).save(map_path)
            events = []
            monitor = FailoverMonitor(
                f"{repl[0]}:{repl[1]}",
                [f"{rrepl[0]}:{rrepl[1]}"],
                probe_timeout=0.5,
                misses_to_fail=2,
                interval_s=0.05,
                promote=True,
                shard_map_path=map_path,
                on_event=events.append,
            )
            daemon = asyncio.create_task(monitor.run())
            await asyncio.sleep(0.2)  # a few healthy probes first
            assert monitor.state == "healthy"
            await primary.stop()
            assert await asyncio.wait_for(daemon, 20.0) == "failed_over"
            assert replica.role == "primary"
            rewritten = ShardMap.load(map_path)
            for shard in rewritten.shards:
                assert shard.endpoints[0] == rserve_str
                assert pserve_str not in shard.endpoints
            kinds = [event["event"] for event in events]
            assert "promoted" in kinds
            assert "shard_map_republished" in kinds
            assert kinds.index("promoted") < kinds.index(
                "shard_map_republished"
            )
            await replica.stop()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# serve --journal shutdown durability (the SIGTERM flush regression)
# ---------------------------------------------------------------------------


class TestServeShutdownFlush:
    def test_sigterm_flushes_buffered_journal_records(self, tmp_path):
        """Acknowledged OP_UPDATEs sitting in the journal's write buffer
        (``--fsync-every 64`` batching) must survive a SIGTERM."""
        jdir = str(tmp_path / "wal")
        seed_journal(jdir, base_rib(120, seed=51))
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--journal", jdir, "--fsync-every", "64",
                "--host", "127.0.0.1", "--port", "0",
            ],
            cwd=REPO_DIR, env=subprocess_env(),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            port = None
            for _ in range(50):
                line = proc.stdout.readline()
                if not line:
                    break
                if line.startswith("serving"):
                    port = int(line.rsplit(":", 1)[1])
                    break
            assert port, proc.stderr.read()
            updates = generate_update_stream(
                base_rib(120, seed=51), 10, seed=1
            )
            response = asyncio.run(
                wire_request("127.0.0.1", port, protocol.OP_UPDATE,
                             updates=updates)
            )
            assert response.status == protocol.STATUS_OK
            acked = json.loads(response.text)["seqno"]
            assert acked == 10
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            proc.kill()
            proc.wait()
            proc.stdout.close()
            proc.stderr.close()
        result = recover(jdir)
        assert result.applied_seqno == 10
        assert result.torn_bytes == 0  # close() finished the final record


# ---------------------------------------------------------------------------
# the cluster chaos sweep (subprocess kill/promote/catch-up)
# ---------------------------------------------------------------------------

STREAM_LEN = 2000
FEED_BATCH = 25
CATCHUP_TIMEOUT_S = 30.0


def spawn_node(jdir, name, primary=None, extra=()):
    argv = [
        sys.executable, "-m", "repro", "replica",
        "--journal", jdir, "--host", "127.0.0.1",
        "--port", "0", "--repl-port", "0",
        "--name", name, "--fsync-every", "8", *extra,
    ]
    if primary is not None:
        argv += ["--primary", f"{primary[0]}:{primary[1]}"]
    proc = subprocess.Popen(
        argv, cwd=REPO_DIR, env=subprocess_env(),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    serve = repl = None
    for _ in range(80):
        line = proc.stdout.readline()
        if not line:
            break
        match = SERVING_RE.search(line)
        if match:
            serve = (match.group(1), int(match.group(2)))
            repl = (match.group(3), int(match.group(4)))
            break
    if serve is None:
        proc.kill()
        raise AssertionError(
            f"{name} never announced endpoints: {proc.stderr.read()}"
        )
    return {"proc": proc, "dir": jdir, "name": name,
            "serve": serve, "repl": repl}


def feed_updates(serve, updates, start, end):
    """Apply ``updates[start:end]`` through the wire in acked batches;
    returns the last acknowledged sequence number."""
    async def go():
        conn = _Connection()
        conn.host, conn.port = serve
        await conn.ensure_open()
        acked = None
        try:
            for i in range(start, end, FEED_BATCH):
                response = await conn.request(
                    protocol.OP_UPDATE,
                    updates=updates[i:i + FEED_BATCH],
                    timeout=30,
                )
                assert response.status == protocol.STATUS_OK, response.text
                acked = json.loads(response.text)["seqno"]
        finally:
            await conn.close()
        return acked

    return asyncio.run(go())


def node_info(repl):
    return asyncio.run(replication.query_info(*repl, timeout=5.0))


def wait_applied(repl, seqno, timeout=CATCHUP_TIMEOUT_S):
    deadline = time.monotonic() + timeout
    while True:
        try:
            info = node_info(repl)
            if info["applied_seqno"] >= seqno:
                return info
        except (ClusterError, ConnectionError, OSError, asyncio.TimeoutError):
            pass
        if time.monotonic() > deadline:
            raise AssertionError(
                f"node at {repl} did not reach seqno {seqno} "
                f"within {timeout}s"
            )
        time.sleep(0.1)


@pytest.fixture(scope="module")
def cluster_sweep(tmp_path_factory):
    """SIGKILL a replica and then the primary mid-stream; the tests below
    assert the cluster converged to the oracle anyway."""
    root = tmp_path_factory.mktemp("cluster-chaos")
    updates = generate_update_stream(base_rib(), count=STREAM_LEN, seed=77)
    oracle = TransactionalPoptrie(rib=base_rib())
    report = oracle.apply_stream(updates)
    assert report.rejected == 0 and report.applied == STREAM_LEN

    nodes = {}
    try:
        pdir = str(root / "p")
        seed_journal(pdir, base_rib())
        # The primary checkpoints mid-stream so the killed replica's
        # rejoin exercises the JournalGap -> checkpoint re-sync path too.
        primary = spawn_node(
            pdir, "p", extra=("--checkpoint-every", "400")
        )
        nodes["p"] = primary
        for name in ("r0", "r1"):
            nodes[name] = spawn_node(
                str(root / name), name, primary=primary["repl"]
            )

        # Phase 1: a third of the stream, then SIGKILL replica r0.
        feed_updates(primary["serve"], updates, 0, 700)
        nodes["r0"]["proc"].kill()
        nodes["r0"]["proc"].wait()

        # Phase 2: keep streaming with r0 dead, then restart it from its
        # own journal (recover + re-subscribe + catch up).
        feed_updates(primary["serve"], updates, 700, 1300)
        r0_restart = spawn_node(
            nodes["r0"]["dir"], "r0", primary=primary["repl"]
        )
        nodes["r0"]["proc"].stderr.close()
        nodes["r0"]["proc"].stdout.close()
        nodes["r0"] = r0_restart

        # Phase 3: SIGKILL the primary, elect and promote a survivor.
        acked = 1300
        primary["proc"].kill()
        primary["proc"].wait()
        survivors = [nodes["r0"], nodes["r1"]]
        promotion = asyncio.run(elect_and_promote([
            f"{node['repl'][0]}:{node['repl'][1]}" for node in survivors
        ]))
        promoted = next(
            node for node in survivors
            if f"{node['repl'][0]}:{node['repl'][1]}" == promotion["promoted"]
        )
        # Records acked by the dead primary but not yet shipped are not
        # on the survivors; the stream resumes from the promoted node's
        # own watermark (never past what was acked).
        resume_from = promotion["promoted_seqno"]
        assert resume_from <= acked

        # Phase 4: finish the stream against the new primary; everyone
        # must converge within the catch-up budget.
        final = feed_updates(promoted["serve"], updates, resume_from,
                             STREAM_LEN)
        assert final == STREAM_LEN
        catchup_started = time.monotonic()
        infos = {
            node["name"]: wait_applied(node["repl"], STREAM_LEN)
            for node in survivors
        }
        catchup_s = time.monotonic() - catchup_started

        yield {
            "nodes": nodes,
            "survivors": survivors,
            "promoted": promoted,
            "promotion": promotion,
            "oracle": oracle,
            "updates": updates,
            "infos": infos,
            "catchup_s": catchup_s,
            "acked_at_kill": acked,
        }

        # Graceful stop so buffered journal bytes hit disk, then verify
        # the recovered state below (in the tests) from a cold start.
        for node in survivors:
            node["proc"].send_signal(signal.SIGTERM)
        for node in survivors:
            assert node["proc"].wait(timeout=30) == 0
    finally:
        for node in nodes.values():
            if node["proc"].poll() is None:
                node["proc"].kill()
                node["proc"].wait()
            node["proc"].stdout.close()
            node["proc"].stderr.close()


class TestClusterChaos:
    def test_promotion_elected_a_survivor(self, cluster_sweep):
        promotion = cluster_sweep["promotion"]
        assert promotion["surveyed"] == 2
        assert promotion["promoted_seqno"] >= promotion["min_seqno"]
        retargets = promotion["retargets"]
        assert all(r.get("retargeted") for r in retargets.values())

    def test_bounded_catch_up(self, cluster_sweep):
        assert cluster_sweep["catchup_s"] < CATCHUP_TIMEOUT_S
        for info in cluster_sweep["infos"].values():
            assert info["applied_seqno"] == STREAM_LEN

    def test_zero_misroutes_over_the_wire(self, cluster_sweep):
        """Every surviving node, queried through the sharded router,
        answers exactly like the crash-free in-process oracle."""
        oracle = cluster_sweep["oracle"]
        endpoints = [
            f"{node['serve'][0]}:{node['serve'][1]}"
            for node in cluster_sweep["survivors"]
        ]
        shard_map = build_shard_map(
            oracle.rib, 2,
            endpoint_sets=[endpoints, list(reversed(endpoints))],
        )
        rng = random.Random(4242)
        keys = [p.value for p, _ in oracle.rib.routes()][:64]
        keys += [rng.getrandbits(32) for _ in range(64)]
        expected = [oracle.lookup(key) for key in keys]

        async def routed():
            router = ClusterRouter(shard_map)
            try:
                return await router.lookup_batch(keys)
            finally:
                await router.close()

        assert asyncio.run(routed()) == expected
        # And each node individually — no replica serves stale routes.
        for node in cluster_sweep["survivors"]:
            response = asyncio.run(
                wire_request(*node["serve"], protocol.OP_LOOKUP4, keys)
            )
            assert list(response.results) == expected, node["name"]

    def test_recovered_journals_match_oracle(self, cluster_sweep):
        # Runs after the module teardown has not yet happened, so stop
        # the survivors here to read their journals cold.
        for node in cluster_sweep["survivors"]:
            if node["proc"].poll() is None:
                node["proc"].send_signal(signal.SIGTERM)
                assert node["proc"].wait(timeout=30) == 0
        oracle = cluster_sweep["oracle"]
        want = structure_to_bytes(Poptrie.from_rib(oracle.rib))
        for node in cluster_sweep["survivors"]:
            result = recover(node["dir"])
            assert result.applied_seqno == STREAM_LEN, node["name"]
            assert route_set(result.rib) == route_set(oracle.rib), node["name"]
            assert structure_to_bytes(
                Poptrie.from_rib(result.rib)
            ) == want, node["name"]


# ---------------------------------------------------------------------------
# the bounded-loss contract (quorum chaos: SIGKILL with min_insync=1)
# ---------------------------------------------------------------------------

QUORUM_STREAM = 400


def feed_quorum(serve, updates, start, end):
    """Like :func:`feed_updates`, but quorum sheds retry: the status is
    retryable and route updates are idempotent, so re-sending a batch
    the primary already journaled converges to the same table."""
    async def go():
        conn = _Connection()
        conn.host, conn.port = serve
        await conn.ensure_open()
        acked = None
        try:
            for i in range(start, end, FEED_BATCH):
                for _ in range(50):
                    response = await conn.request(
                        protocol.OP_UPDATE,
                        updates=updates[i:i + FEED_BATCH],
                        timeout=30,
                    )
                    if response.status == protocol.STATUS_OK:
                        break
                    assert (
                        response.status == protocol.STATUS_QUORUM_TIMEOUT
                    ), response.text
                    await asyncio.sleep(0.1)
                else:
                    raise AssertionError("quorum never formed")
                acked = json.loads(response.text)["seqno"]
        finally:
            await conn.close()
        return acked

    return asyncio.run(go())


def _close_node(node):
    if node["proc"].poll() is None:
        node["proc"].kill()
        node["proc"].wait()
    node["proc"].stdout.close()
    node["proc"].stderr.close()


class TestQuorumChaos:
    def test_min_insync_one_loses_zero_acked_records(self, tmp_path):
        """SIGKILL the primary the instant the last quorum-acked write
        returns: the monitor-promoted replica must already hold every
        acked record (the client ack waited for the replica's ack), and
        its recovered table must be fingerprint-identical to the
        crash-free oracle."""
        updates = generate_update_stream(base_rib(), QUORUM_STREAM, seed=88)
        oracle = TransactionalPoptrie(rib=base_rib())
        oracle.apply_stream(updates)
        pdir = str(tmp_path / "p")
        seed_journal(pdir, base_rib())
        primary = spawn_node(
            pdir, "p", extra=("--min-insync", "1", "--quorum-timeout", "5000")
        )
        replica = None
        try:
            replica = spawn_node(
                str(tmp_path / "r"), "r", primary=primary["repl"]
            )
            acked = feed_quorum(primary["serve"], updates, 0, QUORUM_STREAM)
            assert acked >= QUORUM_STREAM
            primary["proc"].kill()
            primary["proc"].wait()
            # Monitor-driven promotion through the daemon CLI; its JSON
            # event stream is the machine-readable failover record.
            monitor = subprocess.run(
                [
                    sys.executable, "-m", "repro", "monitor",
                    "--primary",
                    f"{primary['repl'][0]}:{primary['repl'][1]}",
                    "--replica",
                    f"{replica['repl'][0]}:{replica['repl'][1]}",
                    "--promote-on-failure", "--interval", "0.05",
                    "--probe-timeout", "0.5", "--misses-to-fail", "2",
                ],
                cwd=REPO_DIR, env=subprocess_env(),
                capture_output=True, text=True, timeout=60,
            )
            assert monitor.returncode == 0, monitor.stderr
            events = [
                json.loads(line) for line in monitor.stdout.splitlines()
            ]
            kinds = [event["event"] for event in events]
            assert "promoted" in kinds
            transitions = [
                (e["from"], e["to"])
                for e in events if e["event"] == "transition"
            ]
            assert ("down", "failed_over") in transitions
            # THE bounded-loss contract: zero acked-record loss, with no
            # live primary left to catch up from.
            info = node_info(replica["repl"])
            assert info["role"] == "primary"
            assert info["applied_seqno"] >= acked
            # Cold-start fingerprint: recover the promoted node's journal
            # and compare the compiled structure byte for byte.
            replica["proc"].send_signal(signal.SIGTERM)
            assert replica["proc"].wait(timeout=30) == 0
            result = recover(replica["dir"])
            assert result.applied_seqno >= acked
            assert route_set(result.rib) == route_set(oracle.rib)
            assert structure_to_bytes(
                Poptrie.from_rib(result.rib)
            ) == structure_to_bytes(Poptrie.from_rib(oracle.rib))
        finally:
            _close_node(primary)
            if replica is not None:
                _close_node(replica)

    def test_quorum_off_loss_window_is_measured(self, tmp_path):
        """The asynchronous-replication baseline the quorum mode exists
        to close: after the same SIGKILL, acked-but-unshipped records
        are simply gone.  The window's *size* is timing-dependent, so it
        is measured and reported rather than asserted non-zero."""
        updates = generate_update_stream(base_rib(), QUORUM_STREAM, seed=89)
        pdir = str(tmp_path / "p")
        seed_journal(pdir, base_rib())
        primary = spawn_node(pdir, "p")
        replica = None
        try:
            replica = spawn_node(
                str(tmp_path / "r"), "r", primary=primary["repl"]
            )
            acked = feed_updates(primary["serve"], updates, 0, QUORUM_STREAM)
            assert acked == QUORUM_STREAM
            primary["proc"].kill()
            primary["proc"].wait()
            time.sleep(1.0)  # let in-flight frames settle
            applied = node_info(replica["repl"])["applied_seqno"]
            loss = acked - applied
            assert 0 <= loss <= acked
            print(f"quorum-off loss window: {loss}/{acked} acked records")
        finally:
            _close_node(primary)
            if replica is not None:
                _close_node(replica)
