"""Unit tests for repro.net.ip — address parsing and bit extraction."""

import pytest
from hypothesis import given, strategies as st

from repro.net import ip


class TestMaskOf:
    def test_zero(self):
        assert ip.mask_of(0) == 0

    def test_small(self):
        assert ip.mask_of(3) == 0b111

    def test_word(self):
        assert ip.mask_of(64) == (1 << 64) - 1


class TestExtract:
    def test_msb_chunk(self):
        assert ip.extract(0b10110000, 0, 3, 8) == 0b101

    def test_middle_chunk(self):
        assert ip.extract(0b10110100, 2, 4, 8) == 0b1101

    def test_lsb_chunk(self):
        assert ip.extract(0b10110100, 6, 2, 8) == 0b00

    def test_zero_pad_past_end(self):
        # Reading 6 bits at offset 30 of a 32-bit key: 2 real bits, 4 zeros.
        assert ip.extract(0xFFFFFFFF, 30, 6, 32) == 0b110000

    def test_entirely_past_end(self):
        assert ip.extract(0xFFFFFFFF, 32, 6, 32) == 0

    def test_offset_far_past_end(self):
        assert ip.extract(0xFFFFFFFF, 100, 6, 32) == 0

    def test_full_width(self):
        assert ip.extract(0xDEADBEEF, 0, 32, 32) == 0xDEADBEEF

    @given(
        key=st.integers(min_value=0, max_value=(1 << 32) - 1),
        offset=st.integers(min_value=0, max_value=40),
        length=st.integers(min_value=1, max_value=8),
    )
    def test_matches_bitstring_reference(self, key, offset, length):
        """extract() must agree with slicing a zero-padded bit string."""
        bits = format(key, "032b") + "0" * 48
        expected = int(bits[offset : offset + length], 2)
        assert ip.extract(key, offset, length, 32) == expected


class TestParseFormat:
    def test_parse_ipv4(self):
        assert ip.parse_address("10.0.0.1") == (0x0A000001, 32)

    def test_parse_ipv6(self):
        value, width = ip.parse_address("2001:db8::1")
        assert width == 128
        assert value >> 96 == 0x20010DB8

    def test_format_roundtrip_v4(self):
        assert ip.format_address(0xC0000201, 32) == "192.0.2.1"

    def test_format_roundtrip_v6(self):
        value, width = ip.parse_address("2001:db8::42")
        assert ip.format_address(value, width) == "2001:db8::42"

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ip.format_address(1 << 32, 32)

    def test_format_rejects_bad_width(self):
        with pytest.raises(ValueError):
            ip.format_address(1, 64)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            ip.parse_address("not-an-address")

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_v4_roundtrip(self, value):
        text = ip.format_address(value, 32)
        assert ip.parse_address(text) == (value, 32)


class TestParsePrefix:
    def test_basic(self):
        assert ip.parse_prefix("192.0.2.0/24") == (0xC0000200, 24, 32)

    def test_default_route(self):
        assert ip.parse_prefix("0.0.0.0/0") == (0, 0, 32)

    def test_bare_address_is_host(self):
        assert ip.parse_prefix("10.0.0.1") == (0x0A000001, 32, 32)

    def test_ipv6(self):
        value, length, width = ip.parse_prefix("2001:db8::/32")
        assert (length, width) == (32, 128)

    def test_rejects_host_bits(self):
        with pytest.raises(ValueError):
            ip.parse_prefix("192.0.2.1/24")

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            ip.parse_prefix("192.0.2.0/33")

    def test_format_prefix(self):
        assert ip.format_prefix(0xC0000200, 24, 32) == "192.0.2.0/24"


class TestCanonical:
    def test_clears_host_bits(self):
        assert ip.canonical_prefix_value(0xC0000201, 24, 32) == 0xC0000200

    def test_length_zero(self):
        assert ip.canonical_prefix_value(0xFFFFFFFF, 0, 32) == 0

    def test_full_length_identity(self):
        assert ip.canonical_prefix_value(0x12345678, 32, 32) == 0x12345678
