"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro.net.fib import NO_ROUTE
from repro.net.prefix import Prefix
from repro.net.rib import Rib


def make_random_rib(
    n_routes: int,
    seed: int,
    width: int = 32,
    max_nexthop: int = 50,
    lengths=None,
) -> Rib:
    """A random route table for equivalence tests."""
    rng = random.Random(seed)
    rib = Rib(width=width)
    while len(rib) < n_routes:
        if lengths is not None:
            length = rng.choice(lengths)
        else:
            length = rng.randint(1, width)
        value = rng.getrandbits(length) << (width - length) if length else 0
        prefix = Prefix(value, length, width)
        if not rib.get(prefix):
            rib.insert(prefix, rng.randint(1, max_nexthop))
    return rib


def naive_lpm(routes: List[Tuple[Prefix, int]], address: int) -> int:
    """Reference longest-prefix match by linear scan."""
    best_len = -1
    best = NO_ROUTE
    for prefix, fib_index in routes:
        if prefix.contains_address(address) and prefix.length > best_len:
            best_len = prefix.length
            best = fib_index
    return best


def boundary_keys(rib: Rib) -> List[int]:
    """First/last addresses of every prefix — the off-by-one hot spots."""
    keys: List[int] = []
    maximum = (1 << rib.width) - 1
    for prefix, _ in rib.routes():
        first = prefix.first_address()
        last = prefix.last_address()
        keys.extend(
            k for k in (first, last, max(first - 1, 0), min(last + 1, maximum))
        )
    return keys


def random_keys(count: int, seed: int, width: int = 32) -> List[int]:
    rng = random.Random(seed)
    return [rng.getrandbits(width) for _ in range(count)]


@pytest.fixture(scope="session")
def bgp_rib() -> Rib:
    """A realistic BGP-style table shared by the structure tests."""
    from repro.data.synth import generate_table

    rib, _ = generate_table(
        n_prefixes=4000, n_nexthops=64, seed=1234, igp_fraction=0.05
    )
    return rib


@pytest.fixture(scope="session")
def small_rib() -> Rib:
    """Small mixed table with hole punching and a default route."""
    rib = Rib(width=32)
    routes = [
        ("0.0.0.0/0", 1),
        ("10.0.0.0/8", 2),
        ("10.128.0.0/9", 3),
        ("10.128.64.0/18", 4),
        ("10.128.64.128/25", 5),
        ("192.0.2.0/24", 6),
        ("192.0.2.128/26", 7),
        ("203.0.113.7/32", 8),
        ("198.51.0.0/16", 9),
        ("198.51.100.0/24", 2),
    ]
    for text, hop in routes:
        rib.insert(Prefix.parse(text), hop)
    return rib
