"""Tests for the Tree BitMap baseline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import boundary_keys, make_random_rib, random_keys

from repro.lookup.treebitmap import TreeBitmap
from repro.mem.layout import AccessTrace
from repro.net.fib import NO_ROUTE
from repro.net.prefix import Prefix
from repro.net.rib import Rib


def rib_of(*routes):
    rib = Rib()
    for text, hop in routes:
        rib.insert(Prefix.parse(text), hop)
    return rib


class TestBasics:
    @pytest.mark.parametrize("stride", [4, 6])
    def test_simple_lookup(self, stride):
        rib = rib_of(("10.0.0.0/8", 1), ("10.1.0.0/16", 2))
        tbm = TreeBitmap.from_rib(rib, stride=stride)
        assert tbm.lookup(Prefix.parse("10.1.2.3/32").value) == 2
        assert tbm.lookup(Prefix.parse("10.2.2.3/32").value) == 1
        assert tbm.lookup(Prefix.parse("11.0.0.0/32").value) == NO_ROUTE

    def test_default_route(self):
        rib = rib_of(("0.0.0.0/0", 9))
        tbm = TreeBitmap.from_rib(rib, stride=4)
        assert tbm.lookup(0xDEADBEEF) == 9

    def test_host_route(self):
        rib = rib_of(("10.0.0.1/32", 4))
        tbm = TreeBitmap.from_rib(rib, stride=6)
        assert tbm.lookup(Prefix.parse("10.0.0.1/32").value) == 4
        assert tbm.lookup(Prefix.parse("10.0.0.0/32").value) == NO_ROUTE

    def test_prefix_not_on_stride_boundary(self):
        # /10 is internal to the level-2 node at stride 4.
        rib = rib_of(("10.192.0.0/10", 3))
        tbm = TreeBitmap.from_rib(rib, stride=4)
        assert tbm.lookup(Prefix.parse("10.200.0.0/32").value) == 3
        assert tbm.lookup(Prefix.parse("10.0.0.0/32").value) == NO_ROUTE

    def test_backtrack_to_shallower_internal_match(self):
        # Deep walk that fails must fall back to the /8's remembered match.
        rib = rib_of(("10.0.0.0/8", 1), ("10.0.0.0/30", 2))
        tbm = TreeBitmap.from_rib(rib, stride=4)
        assert tbm.lookup(Prefix.parse("10.0.0.200/32").value) == 1

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            TreeBitmap(stride=7, width=32)

    def test_names(self):
        rib = rib_of(("10.0.0.0/8", 1))
        assert TreeBitmap.from_rib(rib, stride=4).name == "Tree BitMap"
        assert "64-ary" in TreeBitmap.from_rib(rib, stride=6).name


class TestEquivalence:
    @pytest.mark.parametrize("stride", [2, 4, 6])
    def test_against_rib(self, bgp_rib, stride):
        tbm = TreeBitmap.from_rib(bgp_rib, stride=stride)
        for key in boundary_keys(bgp_rib)[:4000] + random_keys(3000, seed=stride):
            assert tbm.lookup(key) == bgp_rib.lookup(key)

    def test_ipv6(self):
        rib = make_random_rib(150, seed=8, width=128, lengths=[32, 48, 64])
        tbm = TreeBitmap.from_rib(rib, stride=4)
        for key in boundary_keys(rib):
            assert tbm.lookup(key) == rib.lookup(key)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_exhaustive_small(self, seed):
        rib = make_random_rib(30, seed=seed, width=8)
        tbm = TreeBitmap.from_rib(rib, stride=4)
        for address in range(256):
            assert tbm.lookup(address) == rib.lookup(address)


class TestInternals:
    def test_traced_matches_plain(self, bgp_rib):
        tbm = TreeBitmap.from_rib(bgp_rib, stride=6)
        trace = AccessTrace()
        for key in random_keys(400, seed=5):
            trace.reset()
            assert tbm.lookup_traced(key, trace) == tbm.lookup(key)

    def test_traced_includes_result_fetch(self):
        rib = rib_of(("10.0.0.0/8", 1))
        tbm = TreeBitmap.from_rib(rib, stride=4)
        trace = AccessTrace()
        tbm.lookup_traced(Prefix.parse("10.1.1.1/32").value, trace)
        # nodes on the walk + the lazy result fetch at the end
        assert len(trace.accesses) >= 3

    def test_64ary_is_shallower_than_16ary(self, bgp_rib):
        t4 = TreeBitmap.from_rib(bgp_rib, stride=4)
        t6 = TreeBitmap.from_rib(bgp_rib, stride=6)
        key = Prefix.parse("10.0.0.1/32").value
        tr4, tr6 = AccessTrace(), AccessTrace()
        t4.lookup_traced(key, tr4)
        t6.lookup_traced(key, tr6)
        assert len(tr6.accesses) <= len(tr4.accesses)

    def test_memory_accounting(self, bgp_rib):
        tbm = TreeBitmap.from_rib(bgp_rib, stride=4)
        expected = tbm.node_bytes * len(tbm.ext) + 2 * len(tbm.results)
        assert tbm.memory_bytes() == expected

    def test_children_blocks_contiguous(self, bgp_rib):
        tbm = TreeBitmap.from_rib(bgp_rib, stride=6)
        # Walk all nodes: every marked child index must be a valid node.
        for index in range(len(tbm.ext)):
            ext = tbm.ext[index]
            count = bin(ext).count("1")
            if count:
                base = tbm.child_base[index]
                assert base + count <= len(tbm.ext)
