"""Tests for table snapshot I/O."""

import io

import pytest

from tests.conftest import make_random_rib

from repro.data.tableio import dumps_table, load_table, loads_table, save_table
from repro.errors import TableFormatError
from repro.net.prefix import Prefix
from repro.net.rib import Rib


class TestRoundTrip:
    def test_string_roundtrip(self):
        rib = make_random_rib(200, seed=31)
        out = loads_table(dumps_table(rib))
        assert list(out.routes()) == list(rib.routes())

    def test_file_roundtrip(self, tmp_path):
        rib = make_random_rib(100, seed=32)
        path = str(tmp_path / "table.txt")
        written = save_table(rib, path)
        assert written == 100
        out = load_table(path)
        assert list(out.routes()) == list(rib.routes())

    def test_ipv6_roundtrip(self):
        rib = make_random_rib(50, seed=33, width=128, lengths=[32, 48, 64])
        out = loads_table(dumps_table(rib))
        assert out.width == 128
        assert list(out.routes()) == list(rib.routes())

    def test_empty_table(self):
        assert len(loads_table(dumps_table(Rib()))) == 0


class TestFormat:
    def test_header_records_width(self):
        text = dumps_table(Rib(width=128))
        assert text.splitlines()[0] == "# repro-table v1 width=128"

    def test_human_readable_lines(self):
        rib = Rib()
        rib.insert(Prefix.parse("192.0.2.0/24"), 7)
        assert "192.0.2.0/24 7" in dumps_table(rib)

    def test_comments_and_blanks_ignored(self):
        text = "# repro-table v1 width=32\n\n# comment\n10.0.0.0/8 1\n"
        rib = loads_table(text)
        assert len(rib) == 1

    def test_stream_objects_accepted(self):
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 1)
        buffer = io.StringIO()
        save_table(rib, buffer)
        buffer.seek(0)
        assert len(load_table(buffer)) == 1


class TestErrors:
    def test_missing_header(self):
        with pytest.raises(ValueError, match="missing header"):
            loads_table("10.0.0.0/8 1\n")

    def test_bad_route_line_reports_line_number(self):
        text = "# repro-table v1 width=32\n10.0.0.0/8 1\ngarbage\n"
        with pytest.raises(ValueError, match="line 3"):
            loads_table(text)

    def test_bad_fib_index(self):
        text = "# repro-table v1 width=32\n10.0.0.0/8 x\n"
        with pytest.raises(ValueError):
            loads_table(text)

    def test_host_bits_rejected(self):
        text = "# repro-table v1 width=32\n10.0.0.1/8 1\n"
        with pytest.raises(ValueError):
            loads_table(text)


class TestTypedErrors:
    """Every malformed input surfaces as TableFormatError with the 1-based
    line number of the offending input (it stays a ValueError subclass for
    backward compatibility)."""

    def _error(self, text):
        with pytest.raises(TableFormatError) as info:
            loads_table(text)
        return info.value

    def test_missing_header_is_typed(self):
        error = self._error("10.0.0.0/8 1\n")
        assert error.line == 1
        assert isinstance(error, ValueError)

    def test_bad_width_in_header(self):
        error = self._error("# repro-table v1 width=banana\n")
        assert error.line == 1 and "bad width" in str(error)

    def test_unsupported_width(self):
        error = self._error("# repro-table v1 width=64\n")
        assert "expected 32 or 128" in str(error)

    def test_wrong_field_count(self):
        error = self._error("# repro-table v1 width=32\n10.0.0.0/8 1 extra\n")
        assert error.line == 2 and "expected 'prefix fib-index'" in str(error)

    def test_bad_prefix_carries_line(self):
        error = self._error(
            "# repro-table v1 width=32\n10.0.0.0/8 1\n\nnot/a/prefix 2\n"
        )
        assert error.line == 4 and "bad prefix" in str(error)

    def test_wrong_family_prefix(self):
        error = self._error("# repro-table v1 width=32\n2001:db8::/32 1\n")
        assert error.line == 2 and "width=32" in str(error)

    def test_bad_fib_index_message(self):
        error = self._error("# repro-table v1 width=32\n10.0.0.0/8 seven\n")
        assert "bad FIB index 'seven'" in str(error) and error.line == 2

    @pytest.mark.parametrize("index", ["0", "-3", str(1 << 32)])
    def test_out_of_range_fib_index(self, index):
        error = self._error(f"# repro-table v1 width=32\n10.0.0.0/8 {index}\n")
        assert "outside 1..4294967295" in str(error)
