"""Tests for table snapshot I/O.

Two formats share one loader: the human-readable ``repro-table v1`` text
format and the binary ``RPIMG001`` rib image (``save_table_image``).
``load_table`` sniffs the magic, so journal checkpoints written in
either era recover through the same call.
"""

import io

import pytest

from tests.conftest import make_random_rib

from repro.data.tableio import (
    load_table,
    rib_from_image,
    rib_to_image,
    save_table,
    save_table_image,
)
from repro.errors import TableFormatError
from repro.net.prefix import Prefix
from repro.net.rib import Rib
from repro.parallel.image import MAGIC, TableImage


def dumps_table(rib) -> str:
    buffer = io.StringIO()
    save_table(rib, buffer)
    return buffer.getvalue()


def loads_table(text: str):
    return load_table(io.StringIO(text))


class TestRoundTrip:
    def test_string_roundtrip(self):
        rib = make_random_rib(200, seed=31)
        out = loads_table(dumps_table(rib))
        assert list(out.routes()) == list(rib.routes())

    def test_file_roundtrip(self, tmp_path):
        rib = make_random_rib(100, seed=32)
        path = str(tmp_path / "table.txt")
        written = save_table(rib, path)
        assert written == 100
        out = load_table(path)
        assert list(out.routes()) == list(rib.routes())

    def test_ipv6_roundtrip(self):
        rib = make_random_rib(50, seed=33, width=128, lengths=[32, 48, 64])
        out = loads_table(dumps_table(rib))
        assert out.width == 128
        assert list(out.routes()) == list(rib.routes())

    def test_empty_table(self):
        assert len(loads_table(dumps_table(Rib()))) == 0


class TestFormat:
    def test_header_records_width(self):
        text = dumps_table(Rib(width=128))
        assert text.splitlines()[0] == "# repro-table v1 width=128"

    def test_human_readable_lines(self):
        rib = Rib()
        rib.insert(Prefix.parse("192.0.2.0/24"), 7)
        assert "192.0.2.0/24 7" in dumps_table(rib)

    def test_comments_and_blanks_ignored(self):
        text = "# repro-table v1 width=32\n\n# comment\n10.0.0.0/8 1\n"
        rib = loads_table(text)
        assert len(rib) == 1

    def test_stream_objects_accepted(self):
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 1)
        buffer = io.StringIO()
        save_table(rib, buffer)
        buffer.seek(0)
        assert len(load_table(buffer)) == 1


class TestValueDirectives:
    """The ``# repro-values`` extension of the text format."""

    def _valued_rib(self):
        from repro.net.values import ValueTable

        values = ValueTable("cc")
        rib = Rib(values=values)
        rib.insert(Prefix.parse("10.0.0.0/8"), values.intern("CN"))
        rib.insert(Prefix.parse("10.1.0.0/16"), values.intern("JP"))
        return rib

    def test_text_round_trip_carries_values(self):
        rib = self._valued_rib()
        text = dumps_table(rib)
        assert "# repro-values kind=cc count=2" in text
        assert "# v 1 CN" in text and "# v 2 JP" in text
        back = loads_table(text)
        assert back.values == rib.values
        assert back.lookup(Prefix.parse("10.1.2.3/32").value) == 2

    def test_directives_are_comments_to_old_parsers(self):
        """Every value line is ``#``-prefixed, so a pre-value-plane
        parser (which skips comments) reads the same routes."""
        for line in dumps_table(self._valued_rib()).splitlines():
            if "repro-values" in line or line.startswith("# v "):
                assert line.startswith("#")

    def test_plain_tables_emit_no_directives(self):
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 1)
        assert "repro-values" not in dumps_table(rib)
        assert loads_table(dumps_table(rib)).values is None

    def test_value_line_before_directive_rejected(self):
        with pytest.raises(TableFormatError, match="directive"):
            loads_table("# repro-table v1 width=32\n# v 1 CN\n")

    def test_duplicate_directive_rejected(self):
        text = (
            "# repro-table v1 width=32\n"
            "# repro-values kind=cc count=0\n"
            "# repro-values kind=cc count=0\n"
        )
        with pytest.raises(TableFormatError, match="duplicate"):
            loads_table(text)

    def test_out_of_order_ids_rejected(self):
        text = (
            "# repro-table v1 width=32\n"
            "# repro-values kind=cc count=2\n"
            "# v 2 JP\n"
        )
        with pytest.raises(TableFormatError, match="interning order"):
            loads_table(text)

    def test_bad_payload_reports_line_number(self):
        text = (
            "# repro-table v1 width=32\n"
            "# repro-values kind=cc count=1\n"
            "# v 1 TOOLONG\n"
        )
        with pytest.raises(TableFormatError, match="line 3"):
            loads_table(text)

    def test_rib_image_round_trip_carries_values(self):
        rib = self._valued_rib()
        image = rib_to_image(rib)
        assert "values" in image.meta
        back = rib_from_image(image)
        assert back.values == rib.values
        assert sorted(p.text for p, _ in back.routes()) == sorted(
            p.text for p, _ in rib.routes()
        )

    def test_save_table_image_round_trip_carries_values(self, tmp_path):
        rib = self._valued_rib()
        path = str(tmp_path / "geo.img")
        save_table_image(rib, path)
        back = load_table(path)
        assert back.values == rib.values


class TestRibImage:
    """The binary snapshot path: rib → RPIMG001 image → rib."""

    def test_image_roundtrip(self):
        rib = make_random_rib(300, seed=41)
        out = rib_from_image(rib_to_image(rib))
        assert out.width == rib.width
        assert list(out.routes()) == list(rib.routes())

    def test_ipv6_image_roundtrip(self):
        rib = make_random_rib(60, seed=42, width=128, lengths=[16, 64, 120])
        out = rib_from_image(rib_to_image(rib))
        assert out.width == 128
        assert list(out.routes()) == list(rib.routes())

    def test_empty_rib_image(self):
        assert len(rib_from_image(rib_to_image(Rib()))) == 0

    def test_images_are_deterministic(self):
        rib = make_random_rib(100, seed=43)
        assert (
            rib_to_image(rib).fingerprint() == rib_to_image(rib).fingerprint()
        )

    def test_save_table_image_loads_through_load_table(self, tmp_path):
        rib = make_random_rib(150, seed=44)
        path = str(tmp_path / "table.img")
        written = save_table_image(rib, path)
        with open(path, "rb") as stream:
            blob = stream.read()
        assert len(blob) == written
        assert blob[:8] == MAGIC  # binary, magic-sniffed by load_table
        out = load_table(path)
        assert list(out.routes()) == list(rib.routes())

    def test_save_table_image_to_stream(self):
        rib = make_random_rib(50, seed=45)
        buffer = io.BytesIO()
        save_table_image(rib, buffer)
        out = rib_from_image(TableImage.open(buffer.getvalue()))
        assert list(out.routes()) == list(rib.routes())

    def test_wrong_kind_rejected(self):
        from repro.core.poptrie import Poptrie

        trie = Poptrie.from_rib(make_random_rib(20, seed=46))
        with pytest.raises(TableFormatError, match="not a routing table"):
            rib_from_image(trie.to_image())

    def test_corrupt_image_file_is_typed(self, tmp_path):
        path = str(tmp_path / "table.img")
        rib = make_random_rib(40, seed=47)
        save_table_image(rib, path)
        with open(path, "rb") as stream:
            blob = bytearray(stream.read())
        blob[len(blob) // 2] ^= 0x10
        with open(path, "wb") as stream:
            stream.write(bytes(blob))
        with pytest.raises(TableFormatError, match="bad table image"):
            load_table(path)

    def test_binary_garbage_in_text_snapshot_is_typed(self, tmp_path):
        path = str(tmp_path / "table.bin")
        with open(path, "wb") as stream:
            stream.write(b"\x00\xff\xfe garbage that is not UTF-8 \x80")
        with pytest.raises(TableFormatError):
            load_table(path)


class TestErrors:
    def test_missing_header(self):
        with pytest.raises(ValueError, match="missing header"):
            loads_table("10.0.0.0/8 1\n")

    def test_bad_route_line_reports_line_number(self):
        text = "# repro-table v1 width=32\n10.0.0.0/8 1\ngarbage\n"
        with pytest.raises(ValueError, match="line 3"):
            loads_table(text)

    def test_bad_fib_index(self):
        text = "# repro-table v1 width=32\n10.0.0.0/8 x\n"
        with pytest.raises(ValueError):
            loads_table(text)

    def test_host_bits_rejected(self):
        text = "# repro-table v1 width=32\n10.0.0.1/8 1\n"
        with pytest.raises(ValueError):
            loads_table(text)


class TestTypedErrors:
    """Every malformed input surfaces as TableFormatError with the 1-based
    line number of the offending input (it stays a ValueError subclass for
    backward compatibility)."""

    def _error(self, text):
        with pytest.raises(TableFormatError) as info:
            loads_table(text)
        return info.value

    def test_missing_header_is_typed(self):
        error = self._error("10.0.0.0/8 1\n")
        assert error.line == 1
        assert isinstance(error, ValueError)

    def test_bad_width_in_header(self):
        error = self._error("# repro-table v1 width=banana\n")
        assert error.line == 1 and "bad width" in str(error)

    def test_unsupported_width(self):
        error = self._error("# repro-table v1 width=64\n")
        assert "expected 32 or 128" in str(error)

    def test_wrong_field_count(self):
        error = self._error("# repro-table v1 width=32\n10.0.0.0/8 1 extra\n")
        assert error.line == 2 and "expected 'prefix fib-index'" in str(error)

    def test_bad_prefix_carries_line(self):
        error = self._error(
            "# repro-table v1 width=32\n10.0.0.0/8 1\n\nnot/a/prefix 2\n"
        )
        assert error.line == 4 and "bad prefix" in str(error)

    def test_wrong_family_prefix(self):
        error = self._error("# repro-table v1 width=32\n2001:db8::/32 1\n")
        assert error.line == 2 and "width=32" in str(error)

    def test_bad_fib_index_message(self):
        error = self._error("# repro-table v1 width=32\n10.0.0.0/8 seven\n")
        assert "bad FIB index 'seven'" in str(error) and error.line == 2

    @pytest.mark.parametrize("index", ["0", "-3", str(1 << 32)])
    def test_out_of_range_fib_index(self, index):
        error = self._error(f"# repro-table v1 width=32\n10.0.0.0/8 {index}\n")
        assert "outside 1..4294967295" in str(error)
