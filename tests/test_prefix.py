"""Unit tests for the Prefix value type."""

import pytest
from hypothesis import given, strategies as st

from repro.net.prefix import Prefix


def prefixes(width=32):
    @st.composite
    def build(draw):
        length = draw(st.integers(min_value=0, max_value=width))
        raw = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        mask = ((1 << length) - 1) << (width - length) if length else 0
        return Prefix(raw & mask, length, width)

    return build()


class TestConstruction:
    def test_parse(self):
        p = Prefix.parse("192.0.2.0/24")
        assert (p.value, p.length, p.width) == (0xC0000200, 24, 32)

    def test_text_roundtrip(self):
        assert Prefix.parse("10.0.0.0/8").text == "10.0.0.0/8"

    def test_rejects_host_bits(self):
        with pytest.raises(ValueError):
            Prefix(0xC0000201, 24, 32)

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Prefix(0, 33, 32)

    def test_from_bits(self):
        assert Prefix.from_bits("11000000").text == "192.0.0.0/8"

    def test_from_bits_empty(self):
        assert Prefix.from_bits("").text == "0.0.0.0/0"

    def test_ipv6(self):
        p = Prefix.parse("2001:db8::/32")
        assert p.width == 128 and p.length == 32


class TestBits:
    def test_bits_string(self):
        assert Prefix.parse("192.0.0.0/8").bits == "11000000"

    def test_bits_default_route(self):
        assert Prefix.parse("0.0.0.0/0").bits == ""

    def test_bit_accessor(self):
        p = Prefix.parse("192.0.0.0/8")
        assert [p.bit(i) for i in range(8)] == [1, 1, 0, 0, 0, 0, 0, 0]

    def test_bit_out_of_range(self):
        with pytest.raises(IndexError):
            Prefix.parse("10.0.0.0/8").bit(8)


class TestRanges:
    def test_first_last(self):
        p = Prefix.parse("192.0.2.0/24")
        assert p.first_address() == 0xC0000200
        assert p.last_address() == 0xC00002FF

    def test_contains_address(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.contains_address(0x0A123456)
        assert not p.contains_address(0x0B000000)

    def test_default_contains_everything(self):
        assert Prefix.parse("0.0.0.0/0").contains_address(0xFFFFFFFF)

    def test_contains_prefix(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.1.0.0/16")
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_contains_self(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.contains(p)

    def test_contains_rejects_other_family(self):
        v4 = Prefix.parse("10.0.0.0/8")
        v6 = Prefix.parse("2001:db8::/32")
        assert not v4.contains(v6)


class TestAlgebra:
    def test_children(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.child(0).text == "10.0.0.0/9"
        assert p.child(1).text == "10.128.0.0/9"

    def test_parent(self):
        assert Prefix.parse("10.128.0.0/9").parent().text == "10.0.0.0/8"

    def test_sibling(self):
        assert Prefix.parse("10.0.0.0/9").sibling().text == "10.128.0.0/9"

    def test_host_has_no_children(self):
        with pytest.raises(ValueError):
            Prefix.parse("10.0.0.1/32").child(0)

    def test_default_has_no_parent_or_sibling(self):
        root = Prefix.parse("0.0.0.0/0")
        with pytest.raises(ValueError):
            root.parent()
        with pytest.raises(ValueError):
            root.sibling()

    def test_ordering_is_bit_lexicographic(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.0.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert sorted([c, b, a]) == [a, b, c]

    @given(prefixes())
    def test_child_parent_roundtrip(self, p):
        if p.length < p.width:
            assert p.child(0).parent() == p
            assert p.child(1).parent() == p

    @given(prefixes())
    def test_sibling_involution(self, p):
        if p.length > 0:
            assert p.sibling().sibling() == p
            assert p.sibling() != p
            assert p.sibling().parent() == p.parent()

    @given(prefixes(), st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_contains_matches_range(self, p, address):
        expected = p.first_address() <= address <= p.last_address()
        assert p.contains_address(address) == expected

    @given(prefixes())
    def test_children_partition_parent(self, p):
        if p.length < p.width:
            left, right = p.child(0), p.child(1)
            assert left.first_address() == p.first_address()
            assert right.last_address() == p.last_address()
            assert left.last_address() + 1 == right.first_address()
