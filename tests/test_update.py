"""Tests for incremental Poptrie updates (Section 3.5)."""

import random

import pytest

from tests.conftest import random_keys

from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.core.update import UpdatablePoptrie
from repro.errors import UpdateRejectedError
from repro.net.fib import NO_ROUTE
from repro.net.prefix import Prefix


def equivalent_to_rebuild(up: UpdatablePoptrie) -> bool:
    """Structure-level equivalence with a from-scratch compilation."""
    rebuilt = Poptrie.from_rib(up.rib, up.trie.config)
    return (
        rebuilt.inode_count == up.trie.inode_count
        and rebuilt.leaf_count == up.trie.leaf_count
    )


class TestBasicUpdates:
    def test_announce_then_lookup(self):
        up = UpdatablePoptrie(PoptrieConfig(s=16))
        up.announce(Prefix.parse("10.0.0.0/8"), 1)
        assert up.lookup(Prefix.parse("10.1.1.1/32").value) == 1

    def test_withdraw_restores_covering_route(self):
        up = UpdatablePoptrie(PoptrieConfig(s=16))
        up.announce(Prefix.parse("10.0.0.0/8"), 1)
        up.announce(Prefix.parse("10.64.0.0/10"), 2)
        up.withdraw(Prefix.parse("10.64.0.0/10"))
        assert up.lookup(Prefix.parse("10.64.1.1/32").value) == 1

    def test_withdraw_to_empty(self):
        up = UpdatablePoptrie(PoptrieConfig(s=16))
        p = Prefix.parse("10.0.0.0/8")
        up.announce(p, 1)
        up.withdraw(p)
        assert up.lookup(Prefix.parse("10.0.0.1/32").value) == NO_ROUTE

    def test_reannounce_changes_nexthop(self):
        up = UpdatablePoptrie(PoptrieConfig(s=16))
        p = Prefix.parse("192.0.2.0/24")
        up.announce(p, 1)
        up.announce(p, 2)
        assert up.lookup(Prefix.parse("192.0.2.9/32").value) == 2

    def test_reannounce_same_nexthop_is_noop(self):
        up = UpdatablePoptrie(PoptrieConfig(s=16))
        p = Prefix.parse("192.0.2.0/24")
        up.announce(p, 1)
        generation = up.generation
        up.announce(p, 1)
        assert up.generation == generation  # no structural work done

    def test_generation_increments(self):
        up = UpdatablePoptrie(PoptrieConfig(s=16))
        up.announce(Prefix.parse("10.0.0.0/8"), 1)
        up.announce(Prefix.parse("10.0.0.0/24"), 2)
        assert up.generation == 2

    def test_withdraw_missing_raises(self):
        # Regression: this used to escape as an untyped KeyError from the
        # RIB internals; it is now a typed rejection raised up front.
        up = UpdatablePoptrie(PoptrieConfig(s=16))
        with pytest.raises(UpdateRejectedError):
            up.withdraw(Prefix.parse("10.0.0.0/8"))


class TestUpdateValidation:
    """Satellite regression tests: invalid updates are rejected with a
    typed error *before* any state (RIB, trie, allocators) is mutated.

    Previously a negative next hop raised ``OverflowError`` from the array
    layer and an overflowing one ``StructuralLimitError`` — both *after*
    the RIB had been mutated, leaving RIB and trie silently divergent.
    """

    @staticmethod
    def _fingerprint(up):
        return (
            len(up.rib),
            up.rib.node_count,
            up.generation,
            up.stats.updates,
            up.trie.inode_count,
            up.trie.leaf_count,
            up.trie.node_alloc.used_slots,
            up.trie.leaf_alloc.used_slots,
        )

    @pytest.fixture
    def up(self):
        up = UpdatablePoptrie(PoptrieConfig(s=16))
        up.announce(Prefix.parse("10.0.0.0/8"), 1)
        up.announce(Prefix.parse("10.32.0.0/11"), 2)
        return up

    @pytest.mark.parametrize("bad_hop", [-1, 0, NO_ROUTE, 1 << 16, 1 << 40, "7", 2.0, None])
    def test_bad_nexthop_rejected_without_mutation(self, up, bad_hop):
        before = self._fingerprint(up)
        with pytest.raises(UpdateRejectedError):
            up.announce(Prefix.parse("192.0.2.0/24"), bad_hop)
        assert self._fingerprint(up) == before
        assert up.rib.get(Prefix.parse("192.0.2.0/24")) == NO_ROUTE

    def test_withdraw_unknown_rejected_without_mutation(self, up):
        before = self._fingerprint(up)
        with pytest.raises(UpdateRejectedError):
            up.withdraw(Prefix.parse("203.0.113.0/24"))
        assert self._fingerprint(up) == before

    def test_wrong_width_rejected(self, up):
        with pytest.raises(UpdateRejectedError):
            up.announce(Prefix.parse("2001:db8::/32"), 1)
        with pytest.raises(UpdateRejectedError):
            up.withdraw(Prefix.parse("2001:db8::/32"))

    def test_32bit_leaves_accept_wide_nexthop(self):
        up = UpdatablePoptrie(PoptrieConfig(s=16, leaf_bits=32))
        up.announce(Prefix.parse("10.0.0.0/8"), 1 << 20)
        assert up.lookup(Prefix.parse("10.1.1.1/32").value) == 1 << 20


class TestTopLevelPaths:
    def test_short_prefix_rewrites_direct_range(self):
        up = UpdatablePoptrie(PoptrieConfig(s=16))
        up.announce(Prefix.parse("10.0.0.0/8"), 3)
        assert up.stats.toplevel_replacements == 1
        assert up.lookup(Prefix.parse("10.200.0.1/32").value) == 3

    def test_long_prefix_under_leaf_entry_converts_it(self):
        up = UpdatablePoptrie(PoptrieConfig(s=16))
        up.announce(Prefix.parse("10.0.0.0/8"), 1)
        up.announce(Prefix.parse("10.0.0.0/24"), 2)  # entry leaf -> subtree
        assert up.lookup(Prefix.parse("10.0.0.1/32").value) == 2
        assert up.lookup(Prefix.parse("10.0.1.1/32").value) == 1

    def test_subtree_collapses_back_to_leaf_entry(self):
        """Section 3.5: nodes reduced to a single covering leaf are removed
        and the leaf is brought to the upper level."""
        up = UpdatablePoptrie(PoptrieConfig(s=16))
        up.announce(Prefix.parse("10.0.0.0/8"), 1)
        up.announce(Prefix.parse("10.0.0.0/24"), 2)
        nodes_with_subtree = up.trie.inode_count
        up.withdraw(Prefix.parse("10.0.0.0/24"))
        assert up.trie.inode_count < nodes_with_subtree
        from repro.core.poptrie import DIRECT_LEAF

        assert up.trie.direct[0x0A00] & DIRECT_LEAF

    def test_default_route_update(self):
        up = UpdatablePoptrie(PoptrieConfig(s=16))
        up.announce(Prefix.parse("0.0.0.0/0"), 7)
        assert up.lookup(Prefix.parse("203.0.113.1/32").value) == 7
        up.withdraw(Prefix.parse("0.0.0.0/0"))
        assert up.lookup(Prefix.parse("203.0.113.1/32").value) == NO_ROUTE


class TestNoDirectPointing:
    def test_updates_with_s0(self):
        up = UpdatablePoptrie(PoptrieConfig(s=0))
        up.announce(Prefix.parse("10.0.0.0/8"), 1)
        up.announce(Prefix.parse("10.0.0.0/26"), 2)
        assert up.lookup(Prefix.parse("10.0.0.1/32").value) == 2
        up.withdraw(Prefix.parse("10.0.0.0/26"))
        assert up.lookup(Prefix.parse("10.0.0.1/32").value) == 1
        assert equivalent_to_rebuild(up)


class TestStats:
    def test_replacement_counters_accumulate(self):
        up = UpdatablePoptrie(PoptrieConfig(s=16))
        up.announce(Prefix.parse("10.0.0.0/24"), 1)
        up.announce(Prefix.parse("10.0.0.128/25"), 2)
        stats = up.stats
        assert stats.updates == 2
        assert stats.inodes_replaced > 0
        assert stats.leaves_replaced > 0

    def test_per_update_rates(self):
        up = UpdatablePoptrie(PoptrieConfig(s=16))
        up.announce(Prefix.parse("10.0.0.0/24"), 1)
        top, leaves, inodes = up.stats.per_update()
        assert top <= 1.0 and leaves >= 0 and inodes >= 0


@pytest.mark.parametrize("s", [0, 12, 16])
def test_randomized_update_sequences_match_rebuild(s):
    """Invariant 4: after any update sequence the structure is lookup- and
    node-count-equivalent to a fresh compilation of the same RIB."""
    rng = random.Random(s * 1000 + 7)
    up = UpdatablePoptrie(PoptrieConfig(s=s))
    live = []
    for step in range(400):
        if live and rng.random() < 0.4:
            prefix = live.pop(rng.randrange(len(live)))
            up.withdraw(prefix)
        else:
            length = rng.randint(1, 32)
            value = rng.getrandbits(length) << (32 - length) if length else 0
            prefix = Prefix(value, length, 32)
            if not up.rib.get(prefix):
                live.append(prefix)
            up.announce(prefix, rng.randint(1, 40))
        if step % 100 == 99:
            for key in random_keys(400, seed=step):
                assert up.lookup(key) == up.rib.lookup(key)
            assert equivalent_to_rebuild(up)
            up.trie.node_alloc.check_invariants()
            up.trie.leaf_alloc.check_invariants()


def test_update_memory_is_reclaimed():
    """Announce/withdraw cycles must not leak allocator slots."""
    up = UpdatablePoptrie(PoptrieConfig(s=16))
    up.announce(Prefix.parse("10.0.0.0/8"), 1)
    baseline = up.trie.node_alloc.used_slots
    for i in range(50):
        p = Prefix.parse(f"10.0.{i}.0/24")
        up.announce(p, 2)
        up.withdraw(p)
    assert up.trie.node_alloc.used_slots == baseline


def test_lock_free_shape_builds_before_swap(monkeypatch):
    """The update builds replacement blocks before touching the published
    entry: until the direct-array write happens, readers must see the old
    answer.  We verify by checking the lookup result is never 'half new'."""
    up = UpdatablePoptrie(PoptrieConfig(s=16))
    up.announce(Prefix.parse("10.0.0.0/8"), 1)
    key = Prefix.parse("10.0.0.1/32").value

    observed = []
    original_serialize = None
    from repro.core import builder as builder_module

    original_serialize = builder_module.Serializer.serialize

    def spying_serialize(self, tmp):
        # Mid-update (new blocks being written): readers still see 1.
        observed.append(up.trie.lookup(key))
        return original_serialize(self, tmp)

    monkeypatch.setattr(builder_module.Serializer, "serialize", spying_serialize)
    up.announce(Prefix.parse("10.0.0.0/24"), 2)
    assert observed and all(result == 1 for result in observed)
    assert up.lookup(key) == 2
