"""The deprecation shims actually deprecate.

PR 2 left PEP 562 ``__getattr__`` shims behind the names that moved to
:mod:`repro.lookup.registry`.  Two properties must hold for each shim:

- Under ``-W error::DeprecationWarning`` the old spelling *raises*, so
  downstream code running with warnings-as-errors notices the move.
- Under default filters the old spelling still resolves — to the very
  object the registry exports, not a stale copy.

The warnings-as-errors half runs in a subprocess because pytest's own
warning plumbing would otherwise interfere with the filter state.
"""

from __future__ import annotations

import subprocess
import sys
import warnings

import pytest

from repro.lookup import registry

MOVED = ("STANDARD_ALGORITHMS", "standard_roster", "build_structures")
SHIMMED_MODULES = ("repro.bench.harness", "repro.lookup")


def _run(code: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-W", "error::DeprecationWarning", "-c", code],
        capture_output=True,
        text=True,
    )


@pytest.mark.parametrize("module", SHIMMED_MODULES)
@pytest.mark.parametrize("name", MOVED)
def test_moved_name_raises_under_warnings_as_errors(module, name):
    result = _run(f"import {module}; {module}.{name}")
    assert result.returncode != 0, (
        f"{module}.{name} did not raise under -W error::DeprecationWarning"
    )
    assert "DeprecationWarning" in result.stderr
    assert "repro.lookup.registry" in result.stderr, (
        "the warning must point at the new home"
    )


@pytest.mark.parametrize("module", SHIMMED_MODULES)
def test_plain_import_emits_no_warning(module):
    """Importing the module itself is clean; only the old names warn."""
    result = _run(f"import {module}")
    assert result.returncode == 0, result.stderr


@pytest.mark.parametrize("module_name", SHIMMED_MODULES)
@pytest.mark.parametrize("name", MOVED)
def test_moved_name_resolves_to_registry_object(module_name, name):
    module = __import__(module_name, fromlist=["_"])
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        value = getattr(module, name)
    assert value is getattr(registry, name), (
        f"{module_name}.{name} is not the registry's object"
    )
    assert any(
        issubclass(w.category, DeprecationWarning) for w in caught
    ), f"{module_name}.{name} resolved without warning"


@pytest.mark.parametrize("module_name", SHIMMED_MODULES)
def test_unknown_attribute_still_raises(module_name):
    module = __import__(module_name, fromlist=["_"])
    with pytest.raises(AttributeError):
        module.definitely_not_a_name
