"""The deprecation shims actually deprecate.

PR 2 left PEP 562 ``__getattr__`` shims behind the names that moved to
:mod:`repro.lookup.registry`; the image-API redesign added shims for the
``repro.core.serialize`` entry points (now thin wrappers over
:mod:`repro.parallel.image`) and for ``repro.data.tableio``'s string
helpers.  Two properties must hold for each shim:

- Under ``-W error::DeprecationWarning`` the old spelling *raises*, so
  downstream code running with warnings-as-errors notices the move.
- Under default filters the old spelling still resolves — to the very
  object the registry exports, not a stale copy.

The warnings-as-errors half runs in a subprocess because pytest's own
warning plumbing would otherwise interfere with the filter state.
"""

from __future__ import annotations

import subprocess
import sys
import warnings

import pytest

from repro.lookup import registry

MOVED = ("STANDARD_ALGORITHMS", "standard_roster", "build_structures")
SHIMMED_MODULES = ("repro.bench.harness", "repro.lookup")


def _run(code: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-W", "error::DeprecationWarning", "-c", code],
        capture_output=True,
        text=True,
    )


@pytest.mark.parametrize("module", SHIMMED_MODULES)
@pytest.mark.parametrize("name", MOVED)
def test_moved_name_raises_under_warnings_as_errors(module, name):
    result = _run(f"import {module}; {module}.{name}")
    assert result.returncode != 0, (
        f"{module}.{name} did not raise under -W error::DeprecationWarning"
    )
    assert "DeprecationWarning" in result.stderr
    assert "repro.lookup.registry" in result.stderr, (
        "the warning must point at the new home"
    )


@pytest.mark.parametrize("module", SHIMMED_MODULES)
def test_plain_import_emits_no_warning(module):
    """Importing the module itself is clean; only the old names warn."""
    result = _run(f"import {module}")
    assert result.returncode == 0, result.stderr


@pytest.mark.parametrize("module_name", SHIMMED_MODULES)
@pytest.mark.parametrize("name", MOVED)
def test_moved_name_resolves_to_registry_object(module_name, name):
    module = __import__(module_name, fromlist=["_"])
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        value = getattr(module, name)
    assert value is getattr(registry, name), (
        f"{module_name}.{name} is not the registry's object"
    )
    assert any(
        issubclass(w.category, DeprecationWarning) for w in caught
    ), f"{module_name}.{name} resolved without warning"


@pytest.mark.parametrize("module_name", SHIMMED_MODULES)
def test_unknown_attribute_still_raises(module_name):
    module = __import__(module_name, fromlist=["_"])
    with pytest.raises(AttributeError):
        module.definitely_not_a_name


# ---------------------------------------------------------------------------
# the image-API deprecations (repro.core.serialize, repro.data.tableio)
# ---------------------------------------------------------------------------

#: old spelling → (shimmed module, substring the warning must contain)
IMAGE_SHIMS = {
    "save": ("repro.core.serialize", "repro.parallel.image.save_structure"),
    "load": ("repro.core.serialize", "repro.parallel.image.load_structure"),
    "dump_bytes": (
        "repro.core.serialize", "repro.parallel.image.structure_to_bytes"
    ),
    "load_bytes": (
        "repro.core.serialize", "repro.parallel.image.structure_from_bytes"
    ),
    "dumps_table": ("repro.data.tableio", "save_table"),
    "loads_table": ("repro.data.tableio", "load_table"),
}


@pytest.mark.parametrize("name", sorted(IMAGE_SHIMS))
def test_image_shim_raises_under_warnings_as_errors(name):
    module, _ = IMAGE_SHIMS[name]
    result = _run(f"import {module}; {module}.{name}")
    assert result.returncode != 0, (
        f"{module}.{name} did not raise under -W error::DeprecationWarning"
    )
    assert "DeprecationWarning" in result.stderr


@pytest.mark.parametrize("name", sorted(IMAGE_SHIMS))
def test_image_shim_warning_points_at_replacement(name):
    module_name, replacement = IMAGE_SHIMS[name]
    module = __import__(module_name, fromlist=["_"])
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        value = getattr(module, name)
    assert callable(value), f"{module_name}.{name} resolved to {value!r}"
    messages = [
        str(w.message) for w in caught
        if issubclass(w.category, DeprecationWarning)
    ]
    assert messages, f"{module_name}.{name} resolved without warning"
    assert any(replacement in m for m in messages), messages


def test_serialize_shims_are_the_image_functions():
    """The old names resolve to the blessed functions, not stale copies."""
    from repro.core import serialize
    from repro.parallel import image

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        assert serialize.save is image.save_structure
        assert serialize.load is image.load_structure
        assert serialize.dump_bytes is image.structure_to_bytes
        assert serialize.load_bytes is image.structure_from_bytes


def test_serialize_plain_import_is_clean():
    for module in ("repro.core.serialize", "repro.data.tableio"):
        result = _run(f"import {module}")
        assert result.returncode == 0, result.stderr


# ---------------------------------------------------------------------------
# the value-plane fold (repro.net.fib → repro.net.values)
# ---------------------------------------------------------------------------

FIB_SHIMS = ("Fib", "synthetic_fib")


@pytest.mark.parametrize("name", FIB_SHIMS)
def test_fib_shim_raises_under_warnings_as_errors(name):
    result = _run(f"import repro.net.fib; repro.net.fib.{name}")
    assert result.returncode != 0, (
        f"repro.net.fib.{name} did not raise under "
        "-W error::DeprecationWarning"
    )
    assert "DeprecationWarning" in result.stderr
    assert "repro.net.values" in result.stderr, (
        "the warning must point at the new home"
    )


@pytest.mark.parametrize("name", FIB_SHIMS)
def test_fib_shim_resolves_to_values_object(name):
    import repro.net.fib as fib
    from repro.net import values

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        value = getattr(fib, name)
    assert value is getattr(values, name), (
        f"repro.net.fib.{name} is not repro.net.values.{name}"
    )
    assert any(
        issubclass(w.category, DeprecationWarning) for w in caught
    ), f"repro.net.fib.{name} resolved without warning"


def test_fib_kept_names_do_not_warn():
    """NO_ROUTE and NextHop stay importable from fib without warnings."""
    result = _run(
        "from repro.net.fib import NO_ROUTE, NextHop; "
        "assert NO_ROUTE == 0 and NextHop('10.0.0.1').gateway"
    )
    assert result.returncode == 0, result.stderr


def test_fib_plain_import_is_clean():
    result = _run("import repro.net.fib")
    assert result.returncode == 0, result.stderr


def test_fib_unknown_attribute_still_raises():
    import repro.net.fib as fib

    with pytest.raises(AttributeError):
        fib.definitely_not_a_name


# ---------------------------------------------------------------------------
# the route-update API redesign (repro.data.updates.apply_updates →
# replay_updates; the old name now belongs to LookupStructure.apply_updates)
# ---------------------------------------------------------------------------


def test_updates_shim_raises_under_warnings_as_errors():
    result = _run(
        "import repro.data.updates; repro.data.updates.apply_updates"
    )
    assert result.returncode != 0, (
        "repro.data.updates.apply_updates did not raise under "
        "-W error::DeprecationWarning"
    )
    assert "DeprecationWarning" in result.stderr
    assert "replay_updates" in result.stderr, (
        "the warning must point at the new name"
    )


def test_updates_shim_resolves_to_replay_updates():
    from repro.data import updates

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        value = updates.apply_updates
    assert value is updates.replay_updates
    assert any(
        issubclass(w.category, DeprecationWarning) for w in caught
    ), "repro.data.updates.apply_updates resolved without warning"


def test_updates_plain_import_is_clean():
    result = _run("import repro.data.updates")
    assert result.returncode == 0, result.stderr


def test_updates_unknown_attribute_still_raises():
    from repro.data import updates

    with pytest.raises(AttributeError):
        updates.definitely_not_a_name
