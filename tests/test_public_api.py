"""Snapshot test of the library's public API surface.

A failure here means the public contract changed.  If the change is
intentional, update the snapshot below *and* docs/API.md in the same
commit; if not, you just caught an accidental break.
"""

from __future__ import annotations

import repro
from repro import obs
from repro.lookup import registry

GUIDANCE = (
    "public API changed — if intentional, update this snapshot and "
    "docs/API.md together"
)

EXPECTED_TOP_LEVEL = {
    # the algorithm & its configuration
    "Poptrie", "PoptrieConfig", "UpdatablePoptrie", "TransactionalPoptrie",
    # the uniform lookup surface
    "LookupStructure", "registry",
    # observability
    "obs",
    # robustness toolkit
    "FaultPlan", "verify_poptrie",
    # durability (journal + crash recovery + tail shipping)
    "Journal", "recover", "RecoveryResult", "JournalTailer",
    # the route-lookup service
    "LookupServer", "TableHandle", "LoadGenerator",
    # the multicore data plane (zero-copy images + shared-memory pool)
    "TableImage", "WorkerPool", "PoolConfig",
    # the replicated lookup cluster
    "ClusterRouter", "Replica", "ReplicationPublisher",
    "ShardMap", "build_shard_map",
    # errors
    "ReproError", "StructuralLimitError", "TableFormatError",
    "SnapshotFormatError", "UpdateRejectedError", "VerificationError",
    "InjectedFault", "ProtocolError", "JournalCorrupt", "JournalGap",
    "PoolError", "ClusterError",
    # network substrate & the typed value plane
    "NO_ROUTE", "NO_VALUE", "Fib", "NextHop", "Prefix", "Rib", "ValueTable",
    # metadata
    "__version__",
}

EXPECTED_ALGORITHMS = {
    "Radix", "Tree BitMap", "Tree BitMap (64-ary)", "SAIL", "DIR-24-8",
    "D16R", "D18R", "Multibit", "Patricia", "BSearch-Lengths", "Bloom",
    "Lulea", "Poptrie0", "Poptrie16", "Poptrie18",
}

EXPECTED_PARALLEL = {
    "TableImage", "WorkerPool", "PoolConfig", "PoolView",
    "image_to_structure", "load_structure", "save_structure",
    "structure_from_bytes", "structure_to_bytes",
}

EXPECTED_SERVER = {
    "LookupServer", "ServerConfig", "ServerStats", "TableHandle",
    "TableVersion", "LoadGenerator", "LoadGenConfig", "LoadReport",
    "protocol",
}

EXPECTED_CLUSTER = {
    # one node, the shipping channel, and its client helpers
    "Replica", "ReplicationPublisher",
    "query_info", "request_promote", "request_retarget",
    # the quorum write path (serve --min-insync N)
    "QuorumConfig", "QuorumGate",
    # client-side routing and failover coordination
    "ClusterRouter", "FailoverMonitor", "RouterConfig", "elect_and_promote",
    # prefix-space shard maps
    "Shard", "ShardMap", "build_shard_map", "naive_shard_map",
    "shard_balance", "shard_rib",
}

EXPECTED_KERNELS = {
    # the stateless kernel contract and its bound form
    "LookupKernel", "BoundKernel",
    # the per-engine kernels
    "PoptrieKernel", "Dir24_8Kernel", "SailKernel", "DxrKernel",
    # resolution + binding
    "attach", "kernel_for", "kernel_for_class",
    "register_kernel", "available_kernels",
    # dispatch control (bench --no-kernel, template-agreement tests)
    "dispatch_enabled", "kernels_disabled",
    # the popcount primitive
    "popcount64",
}

EXPECTED_OBS = {
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "NullRegistry",
    "NULL_REGISTRY", "ProfileResult", "SpanRecord", "clear_spans",
    "disable", "enable", "enabled", "profiled", "recent_spans", "registry",
    "span", "DEPTH_BUCKETS", "LATENCY_US_BUCKETS", "OCCUPANCY_BUCKETS",
    "SECONDS_BUCKETS",
}


#: The wire protocol's status codes and version are frozen numbers: old
#: clients interpret them, so renumbering is a compatibility break.
EXPECTED_PROTOCOL = {
    "PROTOCOL_VERSION": 2,
    "SUPPORTED_VERSIONS": frozenset({1, 2}),
    "STATUS_OK": 0,
    "STATUS_BAD_REQUEST": 1,
    "STATUS_WRONG_FAMILY": 2,
    "STATUS_UNSUPPORTED": 3,
    "STATUS_SERVER_ERROR": 4,
    "STATUS_SHUTTING_DOWN": 5,
    "STATUS_OVERLOAD": 6,
    "STATUS_DEADLINE_EXCEEDED": 7,
    "STATUS_QUORUM_TIMEOUT": 8,
}

#: Replication frame types are wire-frozen the same way: a replica built
#: against an old primary must still parse the stream (or refuse it with
#: a typed error), so renumbering is a compatibility break.
EXPECTED_REPLICATION_FRAMES = {
    "FRAME_HELLO": 1,
    "FRAME_CHECKPOINT": 2,
    "FRAME_RECORD": 3,
    "FRAME_HEARTBEAT": 4,
    "FRAME_QUERY": 5,
    "FRAME_INFO": 6,
    "FRAME_PROMOTE": 7,
    "FRAME_RETARGET": 8,
    "FRAME_ACK": 9,
}


def test_top_level_exports_are_frozen():
    assert set(repro.__all__) == EXPECTED_TOP_LEVEL, GUIDANCE
    for name in repro.__all__:
        assert hasattr(repro, name), f"{name} exported but missing"


def test_lazy_journal_exports_resolve():
    from repro.robust.journal import Journal, RecoveryResult, recover

    assert repro.Journal is Journal
    assert repro.recover is recover
    assert repro.RecoveryResult is RecoveryResult
    assert "Journal" in dir(repro)


def test_lazy_parallel_exports_resolve():
    from repro.parallel import PoolConfig, TableImage, WorkerPool

    assert repro.TableImage is TableImage
    assert repro.WorkerPool is WorkerPool
    assert repro.PoolConfig is PoolConfig
    assert "TableImage" in dir(repro)


def test_parallel_exports_are_frozen():
    from repro import parallel

    assert set(parallel.__all__) == EXPECTED_PARALLEL, GUIDANCE
    for name in parallel.__all__:
        assert hasattr(parallel, name), f"{name} exported but missing"


def test_pool_error_taxonomy():
    assert issubclass(repro.PoolError, repro.ReproError)
    assert issubclass(repro.PoolError, RuntimeError)


def test_protocol_constants_are_frozen():
    from repro.server import protocol

    for name, value in EXPECTED_PROTOCOL.items():
        assert getattr(protocol, name) == value, GUIDANCE
    # Quorum timeouts are retryable: the batch IS applied and journaled
    # locally, and route updates are idempotent on re-send.
    assert protocol.RETRYABLE_STATUSES == frozenset(
        {
            protocol.STATUS_OVERLOAD,
            protocol.STATUS_DEADLINE_EXCEEDED,
            protocol.STATUS_SHUTTING_DOWN,
            protocol.STATUS_QUORUM_TIMEOUT,
        }
    )


def test_replication_frame_types_are_frozen():
    from repro.cluster import replication

    for name, value in EXPECTED_REPLICATION_FRAMES.items():
        assert getattr(replication, name) == value, GUIDANCE


def test_journal_corrupt_taxonomy():
    assert issubclass(repro.JournalCorrupt, repro.ReproError)
    assert issubclass(repro.JournalCorrupt, ValueError)


def test_cluster_exports_are_frozen():
    from repro import cluster

    assert set(cluster.__all__) == EXPECTED_CLUSTER, GUIDANCE
    for name in cluster.__all__:
        assert hasattr(cluster, name), f"{name} exported but missing"


def test_lazy_cluster_exports_resolve():
    from repro.cluster import (
        ClusterRouter,
        Replica,
        ReplicationPublisher,
        ShardMap,
        build_shard_map,
    )
    from repro.robust.journal import JournalTailer

    assert repro.ClusterRouter is ClusterRouter
    assert repro.Replica is Replica
    assert repro.ReplicationPublisher is ReplicationPublisher
    assert repro.ShardMap is ShardMap
    assert repro.build_shard_map is build_shard_map
    assert repro.JournalTailer is JournalTailer
    assert "ClusterRouter" in dir(repro)


def test_lazy_quorum_exports_resolve():
    import repro.cluster as cluster
    from repro.cluster.replication import QuorumConfig, QuorumGate

    assert cluster.QuorumConfig is QuorumConfig
    assert cluster.QuorumGate is QuorumGate
    assert "QuorumConfig" in dir(cluster)


def test_cluster_error_taxonomy():
    assert issubclass(repro.ClusterError, repro.ReproError)
    assert issubclass(repro.ClusterError, RuntimeError)
    # JournalGap is a shipping-channel signal (re-sync from checkpoint),
    # deliberately NOT a JournalCorrupt: nothing on disk is damaged.
    assert issubclass(repro.JournalGap, repro.ReproError)
    assert not issubclass(repro.JournalGap, repro.JournalCorrupt)
    assert repro.JournalGap("x", resync_seqno=7).resync_seqno == 7


def test_registry_names_are_frozen():
    assert set(registry.available()) == EXPECTED_ALGORITHMS, GUIDANCE
    assert set(registry.STANDARD_ALGORITHMS) <= EXPECTED_ALGORITHMS


def test_obs_exports_are_frozen():
    assert set(obs.__all__) == EXPECTED_OBS, GUIDANCE
    for name in obs.__all__:
        assert hasattr(obs, name), f"{name} exported but missing"


def test_server_exports_are_frozen():
    from repro import server

    assert set(server.__all__) == EXPECTED_SERVER, GUIDANCE
    for name in server.__all__:
        assert hasattr(server, name), f"{name} exported but missing"


def test_kernels_exports_are_frozen():
    from repro.lookup import kernels

    assert set(kernels.__all__) == EXPECTED_KERNELS, GUIDANCE
    for name in kernels.__all__:
        assert hasattr(kernels, name), f"{name} exported but missing"


def test_kernels_registry_round_trip():
    """The registry's capability gates agree with the kernel module."""
    from repro.lookup import kernels

    for name in registry.available():
        entry = registry.get(name)
        assert entry.supports_kernel == (
            kernels.kernel_for_class(entry.cls) is not None
        )


#: Engines with a native incremental update path; everything else takes
#: the measured rebuild fallback.  Growing this set is an improvement;
#: shrinking it is a capability regression this snapshot catches.
EXPECTED_INCREMENTAL = {"Poptrie0", "Poptrie16", "Poptrie18"}


def test_incremental_registry_round_trip():
    """``supports_incremental`` mirrors the class's template hook."""
    incremental = set()
    for name in registry.available():
        entry = registry.get(name)
        assert entry.supports_incremental == entry.cls.supports_incremental()
        if entry.supports_incremental:
            incremental.add(name)
    assert incremental == EXPECTED_INCREMENTAL, GUIDANCE


def test_apply_updates_surface_is_frozen():
    """The update surface every structure now carries (see docs/CHURN.md)."""
    from repro.lookup.base import LookupStructure

    for name in ("apply_updates", "bind_rib", "supports_incremental",
                 "update_engine"):
        assert hasattr(LookupStructure, name), GUIDANCE


def test_update_stream_config_is_typed_and_frozen():
    """UpdateStream follows the StructureConfig contract: frozen fields,
    TypeError on unknown keys, resolve() merging."""
    import dataclasses

    import pytest

    from repro.data import updates
    from repro.lookup.base import StructureConfig

    assert issubclass(updates.UpdateStream, StructureConfig)
    stream = updates.UpdateStream(count=5)
    with pytest.raises(dataclasses.FrozenInstanceError):
        stream.count = 6
    with pytest.raises(TypeError):
        updates.UpdateStream.resolve(None, {"definitely_not_a_knob": 1})
    assert updates.UpdateStream.resolve(stream, {}) is stream


def test_lookup_package_exports():
    from repro import lookup

    for name in ("LookupStructure", "StructureConfig", "NoOptions",
                 "registry"):
        assert name in lookup.__all__, GUIDANCE
