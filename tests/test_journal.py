"""The route-update journal: durability, torn tails, corruption, recovery.

Covers the write path (framing, fsync batching, segment rotation,
checkpoint truncation), the recovery path (empty directory, checkpoint
only, torn final record, replay idempotence), the corruption taxonomy
(a CRC-damaged record mid-segment is :class:`JournalCorrupt`, a torn
*tail* is not), and the journal-then-publish contract of
:class:`TransactionalPoptrie` with a journal attached.
"""

from __future__ import annotations

import os
import struct

import pytest

from repro.core.poptrie import Poptrie
from repro.data import tableio
from repro.data.updates import Update, generate_update_stream
from repro.errors import InjectedFault, JournalCorrupt, JournalGap
from repro.net.prefix import Prefix
from repro.net.rib import Rib
from repro.robust.faults import FaultPlan
from repro.robust.journal import (
    Journal,
    JournalTailer,
    decode_update,
    encode_update,
    read_segment,
    recover,
)
from repro.robust.txn import TransactionalPoptrie


def small_rib() -> Rib:
    rib = Rib()
    rib.insert(Prefix.parse("0.0.0.0/0"), 9)
    rib.insert(Prefix.parse("10.0.0.0/8"), 1)
    rib.insert(Prefix.parse("192.0.2.0/24"), 3)
    return rib


def some_updates(n: int = 20, seed: int = 5):
    return list(generate_update_stream(small_rib(), count=n, seed=seed))


def segment_paths(directory: str):
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.startswith("wal-")
    )


def route_set(rib: Rib):
    return {(p.value, p.length, p.width, hop) for p, hop in rib.routes()}


# ---------------------------------------------------------------------------
# record encoding
# ---------------------------------------------------------------------------


class TestRecordCodec:
    def test_roundtrip_v4_and_v6(self):
        for update in (
            Update("A", Prefix.parse("10.0.0.0/8"), 42),
            Update("W", Prefix.parse("10.0.0.0/8")),
            Update("A", Prefix.parse("2001:db8::/32"), 7),
        ):
            decoded = decode_update(encode_update(update))
            assert decoded.kind == update.kind
            assert decoded.prefix == update.prefix
            if update.kind == "A":
                assert decoded.nexthop == update.nexthop

    def test_withdraw_nexthop_normalised_to_zero(self):
        update = Update("W", Prefix.parse("10.0.0.0/8"), 999)
        assert decode_update(encode_update(update)).nexthop == 0

    def test_bad_payloads_are_corrupt(self):
        good = encode_update(Update("A", Prefix.parse("10.0.0.0/8"), 1))
        with pytest.raises(JournalCorrupt):
            decode_update(good[:-1])  # wrong size
        with pytest.raises(JournalCorrupt):
            decode_update(b"\x07" + good[1:])  # unknown kind code
        with pytest.raises(JournalCorrupt):
            decode_update(b"\x00\x21" + good[2:])  # width 33

    def test_unjournalable_updates_rejected(self):
        with pytest.raises(ValueError):
            encode_update(Update("?", Prefix.parse("10.0.0.0/8"), 1))
        with pytest.raises(ValueError):
            encode_update(Update("A", Prefix.parse("10.0.0.0/8"), 1 << 40))


# ---------------------------------------------------------------------------
# the write path
# ---------------------------------------------------------------------------


class TestJournalWrites:
    def test_appends_are_sequenced_and_survive_reopen(self, tmp_path):
        d = str(tmp_path)
        with Journal(d) as journal:
            seqnos = [journal.append(u) for u in some_updates(5)]
        assert seqnos == [1, 2, 3, 4, 5]
        reopened = Journal(d)
        assert reopened.last_seqno == 5
        assert reopened.append(some_updates(1)[0]) == 6
        reopened.close()

    def test_fsync_batching(self, tmp_path):
        journal = Journal(str(tmp_path), fsync_every=4)
        for update in some_updates(8):
            journal.append(update)
        assert journal.stats.fsyncs == 2
        journal.append(some_updates(1)[0])
        journal.flush()  # one unsynced record -> one more fsync
        assert journal.stats.fsyncs == 3
        journal.flush()  # nothing unsynced -> no fsync
        assert journal.stats.fsyncs == 3
        journal.close()

    def test_segment_rotation(self, tmp_path):
        d = str(tmp_path)
        journal = Journal(d, segment_bytes=128)
        for update in some_updates(12):
            journal.append(update)
        journal.close()
        paths = segment_paths(d)
        assert len(paths) > 1
        assert journal.stats.rotations == len(paths) - 1
        # Segments chain: each starts where the previous ended.
        expected_base = 1
        total = 0
        for path in paths:
            info = read_segment(path)
            assert info.base == expected_base
            expected_base = info.next_seqno
            total += info.count
        assert total == 12

    def test_checkpoint_truncates_segments(self, tmp_path):
        d = str(tmp_path)
        rib = small_rib()
        journal = Journal(d)
        txn = TransactionalPoptrie(rib=rib, journal=journal)
        for update in some_updates(10):
            try:
                if update.kind == "A":
                    txn.announce(update.prefix, update.nexthop)
                else:
                    txn.withdraw(update.prefix)
            except Exception:
                pass
        assert segment_paths(d)
        path = txn.checkpoint()
        assert os.path.exists(path)
        assert segment_paths(d) == []
        # Recovery from the checkpoint alone reproduces the live state.
        result = recover(d)
        assert result.replayed == 0
        assert route_set(result.rib) == route_set(txn.rib)
        journal.close()

    def test_checkpoint_requires_journal(self):
        with pytest.raises(ValueError):
            TransactionalPoptrie(rib=small_rib()).checkpoint()


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------


class TestRecovery:
    def test_empty_directory_recovers_empty_table(self, tmp_path):
        result = recover(str(tmp_path))
        assert result.last_seqno == 0
        assert len(result.rib) == 0
        assert result.checkpoint_path is None

    def test_missing_directory_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            recover(str(tmp_path / "nope"))

    def test_checkpoint_only(self, tmp_path):
        d = str(tmp_path)
        rib = small_rib()
        with Journal(d) as journal:
            journal.checkpoint(rib)
        result = recover(d)
        assert result.replayed == 0
        assert result.checkpoint_seqno == 0
        assert route_set(result.rib) == route_set(rib)

    def test_tail_replay_matches_in_process_oracle(self, tmp_path):
        d = str(tmp_path)
        rib = small_rib()
        updates = some_updates(40, seed=9)
        with Journal(d) as journal:
            journal.checkpoint(rib)
            oracle = TransactionalPoptrie(rib=small_rib(), journal=journal)
            oracle.apply_stream(updates, on_error="skip")
        result = recover(d)
        assert result.replayed + result.skipped == len(updates)
        assert route_set(result.rib) == route_set(oracle.rib)

    def test_replay_is_idempotent(self, tmp_path):
        d = str(tmp_path)
        with Journal(d) as journal:
            for update in some_updates(25, seed=13):
                journal.append(update)
        first = recover(d)
        second = recover(d)
        assert route_set(first.rib) == route_set(second.rib)
        assert first.last_seqno == second.last_seqno == 25

    def test_torn_final_record_discarded(self, tmp_path):
        d = str(tmp_path)
        with Journal(d) as journal:
            for update in some_updates(6):
                journal.append(update)
        path = segment_paths(d)[-1]
        with open(path, "ab") as stream:
            stream.write(b"\x18\x00\x00")  # half a record header
        result = recover(d)
        assert result.torn_bytes == 3
        assert result.last_seqno == 6
        # Reopening for append truncates the torn bytes in place.
        journal = Journal(d)
        assert journal.stats.torn_bytes_discarded == 3
        assert journal.append(some_updates(1)[0]) == 7
        journal.close()
        assert recover(d).last_seqno == 7

    def test_crc_corrupt_mid_segment_raises(self, tmp_path):
        d = str(tmp_path)
        with Journal(d) as journal:
            for update in some_updates(6):
                journal.append(update)
        path = segment_paths(d)[-1]
        # Flip one payload byte of the *second* record: a complete frame
        # with a bad CRC — real corruption, never a torn tail.
        record_bytes = 8 + 24
        offset = 16 + record_bytes + 8 + 2
        with open(path, "rb+") as stream:
            stream.seek(offset)
            byte = stream.read(1)
            stream.seek(offset)
            stream.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(JournalCorrupt, match="CRC mismatch"):
            recover(d)
        with pytest.raises(JournalCorrupt):
            read_segment(path, tail_ok=True)  # tail_ok does not excuse CRCs

    def test_missing_segment_raises(self, tmp_path):
        d = str(tmp_path)
        with Journal(d, segment_bytes=128) as journal:
            for update in some_updates(12):
                journal.append(update)
        paths = segment_paths(d)
        assert len(paths) >= 3
        os.unlink(paths[1])
        with pytest.raises(JournalCorrupt, match="missing segment"):
            recover(d)

    def test_unreadable_checkpoint_falls_back(self, tmp_path):
        d = str(tmp_path)
        rib = small_rib()
        journal = Journal(d)
        first = journal.checkpoint(rib)
        # Fake a newer, damaged checkpoint alongside the good one.
        bogus = os.path.join(d, "checkpoint-00000000000000000009.tbl")
        with open(bogus, "w") as stream:
            stream.write("not a table\n")
        result = recover(d)
        assert result.checkpoints_skipped == 1
        assert result.checkpoint_path == first
        assert route_set(result.rib) == route_set(rib)
        journal.close()


# ---------------------------------------------------------------------------
# journal-then-publish and fault sites
# ---------------------------------------------------------------------------


class TestJournalFaults:
    def test_failed_append_refuses_the_update(self, tmp_path):
        journal = Journal(str(tmp_path))
        txn = TransactionalPoptrie(rib=small_rib(), journal=journal)
        before = route_set(txn.rib)
        with FaultPlan(journal_fail_at=1):
            with pytest.raises(InjectedFault):
                txn.announce(Prefix.parse("172.16.0.0/12"), 5)
        assert route_set(txn.rib) == before
        assert txn.txn_stats.journal_failures == 1
        assert journal.last_seqno == 0
        journal.close()

    def test_torn_write_fault_recovers_clean(self, tmp_path):
        d = str(tmp_path)
        journal = Journal(d)
        updates = some_updates(5)
        for update in updates[:3]:
            journal.append(update)
        with FaultPlan(torn_journal_at=1, torn_journal_bytes=7) as plan:
            with pytest.raises(InjectedFault):
                journal.append(updates[3])
        assert plan.fired == [("torn-journal", 1)]
        # The partial record is on disk; recovery discards exactly it.
        result = recover(d)
        assert result.torn_bytes == 7
        assert result.last_seqno == 3

    def test_fsync_fault_propagates(self, tmp_path):
        journal = Journal(str(tmp_path), fsync_every=1)
        with FaultPlan(fsync_fail_at=1):
            with pytest.raises(InjectedFault):
                journal.append(some_updates(1)[0])

    def test_checkpoint_fault_keeps_previous_state(self, tmp_path):
        d = str(tmp_path)
        rib = small_rib()
        journal = Journal(d)
        journal.checkpoint(rib)
        for update in some_updates(4):
            journal.append(update)
        expected = route_set(recover(d).rib)
        with FaultPlan(checkpoint_fail_at=1):
            with pytest.raises(InjectedFault):
                journal.checkpoint(recover(d).rib)
        # No temporary litter, old checkpoint + tail intact.
        assert not [n for n in os.listdir(d) if n.endswith(".tmp")]
        assert segment_paths(d)
        assert route_set(recover(d).rib) == expected
        journal.close()


# ---------------------------------------------------------------------------
# serve --journal / recover CLI integration (in-process)
# ---------------------------------------------------------------------------


class TestRecoverCli:
    def test_recover_reports_and_writes_table(self, tmp_path, capsys):
        from repro.cli import main

        d = str(tmp_path / "wal")
        with Journal(d) as journal:
            journal.checkpoint(small_rib())
            for update in some_updates(8):
                journal.append(update)
        out = str(tmp_path / "recovered.txt")
        assert main(["recover", d, "-o", out]) == 0
        text = capsys.readouterr().out
        assert "replayed" in text and "verified" in text
        recovered = tableio.load_table(out)
        assert route_set(recovered) == route_set(recover(d).rib)

    def test_recover_compact_truncates(self, tmp_path):
        from repro.cli import main

        d = str(tmp_path / "wal")
        with Journal(d) as journal:
            for update in some_updates(8):
                journal.append(update)
        assert main(["recover", d, "--compact"]) == 0
        assert segment_paths(d) == []
        result = recover(d)
        assert result.checkpoint_seqno == 8
        assert result.replayed == 0

    def test_recover_exits_1_on_corruption(self, tmp_path, capsys):
        from repro.cli import main

        d = str(tmp_path / "wal")
        with Journal(d) as journal:
            for update in some_updates(4):
                journal.append(update)
        path = segment_paths(d)[-1]
        with open(path, "rb+") as stream:
            stream.seek(16 + 8 + 4)  # first record's payload
            stream.write(b"\xff\xff")
        assert main(["recover", d]) == 1
        assert "CRC" in capsys.readouterr().err

    def test_obs_counters_flow(self, tmp_path):
        from repro import obs

        obs.enable()
        try:
            d = str(tmp_path / "wal")
            with Journal(d) as journal:
                for update in some_updates(3):
                    journal.append(update)
                journal.checkpoint(recover(d).rib)
            registry = obs.registry()
            label = os.path.basename(os.path.normpath(d))
            assert registry.counter(
                "repro_journal_appends_total", journal=label
            ).value == 3
            assert registry.counter(
                "repro_journal_checkpoints_total", journal=label
            ).value == 1
            assert registry.counter(
                "repro_journal_fsyncs_total", journal=label
            ).value >= 3
            assert registry.gauge(
                "repro_journal_recovery_seconds", journal=label
            ).value > 0
        finally:
            obs.disable()


# ---------------------------------------------------------------------------
# the applied_seqno watermark
# ---------------------------------------------------------------------------


class TestAppliedSeqno:
    def test_tracks_appends_and_survives_reopen(self, tmp_path):
        d = str(tmp_path)
        journal = Journal(d)
        assert journal.applied_seqno == 0
        for update in some_updates(5):
            journal.append(update)
        assert journal.applied_seqno == 5
        assert journal.describe()["applied_seqno"] == 5
        journal.close()
        assert Journal(d).applied_seqno == 5

    def test_recovery_result_exposes_the_watermark(self, tmp_path):
        d = str(tmp_path)
        with Journal(d) as journal:
            journal.checkpoint(small_rib())
            for update in some_updates(7):
                journal.append(update)
        result = recover(d)
        assert result.applied_seqno == result.last_seqno == 7
        assert result.describe()["applied_seqno"] == 7

    def test_install_checkpoint_adopts_external_snapshot(self, tmp_path):
        d = str(tmp_path)
        journal = Journal(d)
        for update in some_updates(5):
            journal.append(update)
        # A replication peer ships a snapshot covering seqno 40: local
        # history is discarded and the sequence resumes from there.
        rib = small_rib()
        path = journal.install_checkpoint(rib, 40)
        assert os.path.exists(path)
        assert segment_paths(d) == []
        assert journal.checkpoint_seqno == 40
        assert journal.applied_seqno == 40
        assert journal.append(some_updates(1)[0]) == 41
        journal.close()
        result = recover(d)
        assert result.checkpoint_seqno == 40
        assert result.applied_seqno == 41

    def test_install_checkpoint_rejects_negative_seqno(self, tmp_path):
        journal = Journal(str(tmp_path))
        with pytest.raises(ValueError):
            journal.install_checkpoint(small_rib(), -1)
        journal.close()


# ---------------------------------------------------------------------------
# tail shipping (JournalTailer)
# ---------------------------------------------------------------------------


class TestJournalTailer:
    def test_poll_delivers_appends_in_order(self, tmp_path):
        d = str(tmp_path)
        journal = Journal(d)
        tailer = JournalTailer(d)
        assert tailer.poll() == []  # nothing written yet
        updates = some_updates(6)
        for update in updates:
            journal.append(update)
        journal.flush()
        polled = tailer.poll()
        assert [seqno for seqno, _ in polled] == [1, 2, 3, 4, 5, 6]
        assert [u.prefix for _, u in polled] == [u.prefix for u in updates]
        assert tailer.poll() == []
        journal.close()

    def test_only_flushed_bytes_are_visible(self, tmp_path):
        """The durability contract replication relies on: records still in
        the writer's buffer (fsync_every batching) must not ship."""
        d = str(tmp_path)
        journal = Journal(d, fsync_every=8)
        tailer = JournalTailer(d)
        for update in some_updates(5):
            journal.append(update)
        assert tailer.poll() == []
        journal.flush()
        assert [seqno for seqno, _ in tailer.poll()] == [1, 2, 3, 4, 5]
        journal.close()

    def test_limit_paces_delivery(self, tmp_path):
        d = str(tmp_path)
        with Journal(d) as journal:
            for update in some_updates(9):
                journal.append(update)
        tailer = JournalTailer(d)
        assert [s for s, _ in tailer.poll(limit=4)] == [1, 2, 3, 4]
        assert tailer.position == 4
        assert [s for s, _ in tailer.poll(limit=4)] == [5, 6, 7, 8]
        assert [s for s, _ in tailer.poll(limit=4)] == [9]

    def test_follows_segment_rotation_incrementally(self, tmp_path):
        """A poll between every append must cross rotation boundaries
        without skipping or repeating records."""
        d = str(tmp_path)
        journal = Journal(d, segment_bytes=64)  # ~2 records per segment
        tailer = JournalTailer(d)
        seen = []
        for update in some_updates(12):
            journal.append(update)
            journal.flush()
            seen.extend(seqno for seqno, _ in tailer.poll())
        assert seen == list(range(1, 13))
        assert len(segment_paths(d)) > 1
        journal.close()

    def test_single_poll_spans_many_segments(self, tmp_path):
        d = str(tmp_path)
        with Journal(d, segment_bytes=64) as journal:
            for update in some_updates(12):
                journal.append(update)
        assert len(segment_paths(d)) > 1
        tailer = JournalTailer(d)
        assert [s for s, _ in tailer.poll()] == list(range(1, 13))

    def test_late_tailer_starts_mid_stream(self, tmp_path):
        d = str(tmp_path)
        with Journal(d, segment_bytes=64) as journal:
            for update in some_updates(10):
                journal.append(update)
        tailer = JournalTailer(d, after_seqno=7)
        assert [s for s, _ in tailer.poll()] == [8, 9, 10]

    def test_torn_tail_held_back_until_complete(self, tmp_path):
        d = str(tmp_path)
        journal = Journal(d)
        for update in some_updates(3):
            journal.append(update)
        journal.close()
        path = segment_paths(d)[-1]
        with open(path, "ab") as stream:
            stream.write(b"\x18\x00\x00")  # half a record header
        tailer = JournalTailer(d)
        assert [s for s, _ in tailer.poll()] == [1, 2, 3]
        assert tailer.poll() == []  # the torn record never ships
        # The writer reopens (truncating the torn bytes) and appends:
        # the tailer picks up exactly the new record.
        journal = Journal(d)
        journal.append(some_updates(1)[0])
        journal.flush()
        assert [s for s, _ in tailer.poll()] == [4]
        journal.close()

    def test_checkpoint_truncation_raises_gap(self, tmp_path):
        d = str(tmp_path)
        journal = Journal(d)
        for update in some_updates(10):
            journal.append(update)
        journal.flush()
        tailer = JournalTailer(d)
        assert len(tailer.poll(limit=4)) == 4
        journal.checkpoint(recover(d).rib)  # deletes every segment
        with pytest.raises(JournalGap) as excinfo:
            tailer.poll()
        assert excinfo.value.resync_seqno == 10
        journal.close()

    def test_fresh_tailer_behind_checkpoint_raises_gap(self, tmp_path):
        d = str(tmp_path)
        with Journal(d) as journal:
            for update in some_updates(5):
                journal.append(update)
            journal.checkpoint(recover(d).rib)
        with pytest.raises(JournalGap) as excinfo:
            JournalTailer(d).poll()
        assert excinfo.value.resync_seqno == 5

    def test_crc_damage_is_corruption_not_gap(self, tmp_path):
        d = str(tmp_path)
        with Journal(d) as journal:
            for update in some_updates(4):
                journal.append(update)
        path = segment_paths(d)[-1]
        with open(path, "rb+") as stream:
            stream.seek(16 + 8 + 2)  # first record's payload
            stream.write(b"\xff\xff")
        with pytest.raises(JournalCorrupt, match="CRC mismatch"):
            JournalTailer(d).poll()

    def test_rejects_negative_start(self, tmp_path):
        with pytest.raises(ValueError):
            JournalTailer(str(tmp_path), after_seqno=-1)


def test_recovered_table_compiles_identically(tmp_path):
    """Byte-identical compile: recovery loses nothing a build can see."""
    from repro.parallel.image import structure_to_bytes

    d = str(tmp_path)
    rib = small_rib()
    updates = some_updates(30, seed=21)
    with Journal(d) as journal:
        journal.checkpoint(rib)
        oracle = TransactionalPoptrie(rib=small_rib(), journal=journal)
        oracle.apply_stream(updates, on_error="skip")
    recovered = recover(d)
    assert structure_to_bytes(Poptrie.from_rib(recovered.rib)) == structure_to_bytes(
        Poptrie.from_rib(oracle.rib)
    )
