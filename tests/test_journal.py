"""The route-update journal: durability, torn tails, corruption, recovery.

Covers the write path (framing, fsync batching, segment rotation,
checkpoint truncation), the recovery path (empty directory, checkpoint
only, torn final record, replay idempotence), the corruption taxonomy
(a CRC-damaged record mid-segment is :class:`JournalCorrupt`, a torn
*tail* is not), and the journal-then-publish contract of
:class:`TransactionalPoptrie` with a journal attached.
"""

from __future__ import annotations

import os
import struct

import pytest

from repro.core.poptrie import Poptrie
from repro.data import tableio
from repro.data.updates import Update, generate_update_stream
from repro.errors import InjectedFault, JournalCorrupt
from repro.net.prefix import Prefix
from repro.net.rib import Rib
from repro.robust.faults import FaultPlan
from repro.robust.journal import (
    Journal,
    decode_update,
    encode_update,
    read_segment,
    recover,
)
from repro.robust.txn import TransactionalPoptrie


def small_rib() -> Rib:
    rib = Rib()
    rib.insert(Prefix.parse("0.0.0.0/0"), 9)
    rib.insert(Prefix.parse("10.0.0.0/8"), 1)
    rib.insert(Prefix.parse("192.0.2.0/24"), 3)
    return rib


def some_updates(n: int = 20, seed: int = 5):
    return list(generate_update_stream(small_rib(), count=n, seed=seed))


def segment_paths(directory: str):
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.startswith("wal-")
    )


def route_set(rib: Rib):
    return {(p.value, p.length, p.width, hop) for p, hop in rib.routes()}


# ---------------------------------------------------------------------------
# record encoding
# ---------------------------------------------------------------------------


class TestRecordCodec:
    def test_roundtrip_v4_and_v6(self):
        for update in (
            Update("A", Prefix.parse("10.0.0.0/8"), 42),
            Update("W", Prefix.parse("10.0.0.0/8")),
            Update("A", Prefix.parse("2001:db8::/32"), 7),
        ):
            decoded = decode_update(encode_update(update))
            assert decoded.kind == update.kind
            assert decoded.prefix == update.prefix
            if update.kind == "A":
                assert decoded.nexthop == update.nexthop

    def test_withdraw_nexthop_normalised_to_zero(self):
        update = Update("W", Prefix.parse("10.0.0.0/8"), 999)
        assert decode_update(encode_update(update)).nexthop == 0

    def test_bad_payloads_are_corrupt(self):
        good = encode_update(Update("A", Prefix.parse("10.0.0.0/8"), 1))
        with pytest.raises(JournalCorrupt):
            decode_update(good[:-1])  # wrong size
        with pytest.raises(JournalCorrupt):
            decode_update(b"\x07" + good[1:])  # unknown kind code
        with pytest.raises(JournalCorrupt):
            decode_update(b"\x00\x21" + good[2:])  # width 33

    def test_unjournalable_updates_rejected(self):
        with pytest.raises(ValueError):
            encode_update(Update("?", Prefix.parse("10.0.0.0/8"), 1))
        with pytest.raises(ValueError):
            encode_update(Update("A", Prefix.parse("10.0.0.0/8"), 1 << 40))


# ---------------------------------------------------------------------------
# the write path
# ---------------------------------------------------------------------------


class TestJournalWrites:
    def test_appends_are_sequenced_and_survive_reopen(self, tmp_path):
        d = str(tmp_path)
        with Journal(d) as journal:
            seqnos = [journal.append(u) for u in some_updates(5)]
        assert seqnos == [1, 2, 3, 4, 5]
        reopened = Journal(d)
        assert reopened.last_seqno == 5
        assert reopened.append(some_updates(1)[0]) == 6
        reopened.close()

    def test_fsync_batching(self, tmp_path):
        journal = Journal(str(tmp_path), fsync_every=4)
        for update in some_updates(8):
            journal.append(update)
        assert journal.stats.fsyncs == 2
        journal.append(some_updates(1)[0])
        journal.flush()  # one unsynced record -> one more fsync
        assert journal.stats.fsyncs == 3
        journal.flush()  # nothing unsynced -> no fsync
        assert journal.stats.fsyncs == 3
        journal.close()

    def test_segment_rotation(self, tmp_path):
        d = str(tmp_path)
        journal = Journal(d, segment_bytes=128)
        for update in some_updates(12):
            journal.append(update)
        journal.close()
        paths = segment_paths(d)
        assert len(paths) > 1
        assert journal.stats.rotations == len(paths) - 1
        # Segments chain: each starts where the previous ended.
        expected_base = 1
        total = 0
        for path in paths:
            info = read_segment(path)
            assert info.base == expected_base
            expected_base = info.next_seqno
            total += info.count
        assert total == 12

    def test_checkpoint_truncates_segments(self, tmp_path):
        d = str(tmp_path)
        rib = small_rib()
        journal = Journal(d)
        txn = TransactionalPoptrie(rib=rib, journal=journal)
        for update in some_updates(10):
            try:
                if update.kind == "A":
                    txn.announce(update.prefix, update.nexthop)
                else:
                    txn.withdraw(update.prefix)
            except Exception:
                pass
        assert segment_paths(d)
        path = txn.checkpoint()
        assert os.path.exists(path)
        assert segment_paths(d) == []
        # Recovery from the checkpoint alone reproduces the live state.
        result = recover(d)
        assert result.replayed == 0
        assert route_set(result.rib) == route_set(txn.rib)
        journal.close()

    def test_checkpoint_requires_journal(self):
        with pytest.raises(ValueError):
            TransactionalPoptrie(rib=small_rib()).checkpoint()


# ---------------------------------------------------------------------------
# recovery
# ---------------------------------------------------------------------------


class TestRecovery:
    def test_empty_directory_recovers_empty_table(self, tmp_path):
        result = recover(str(tmp_path))
        assert result.last_seqno == 0
        assert len(result.rib) == 0
        assert result.checkpoint_path is None

    def test_missing_directory_is_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            recover(str(tmp_path / "nope"))

    def test_checkpoint_only(self, tmp_path):
        d = str(tmp_path)
        rib = small_rib()
        with Journal(d) as journal:
            journal.checkpoint(rib)
        result = recover(d)
        assert result.replayed == 0
        assert result.checkpoint_seqno == 0
        assert route_set(result.rib) == route_set(rib)

    def test_tail_replay_matches_in_process_oracle(self, tmp_path):
        d = str(tmp_path)
        rib = small_rib()
        updates = some_updates(40, seed=9)
        with Journal(d) as journal:
            journal.checkpoint(rib)
            oracle = TransactionalPoptrie(rib=small_rib(), journal=journal)
            oracle.apply_stream(updates, on_error="skip")
        result = recover(d)
        assert result.replayed + result.skipped == len(updates)
        assert route_set(result.rib) == route_set(oracle.rib)

    def test_replay_is_idempotent(self, tmp_path):
        d = str(tmp_path)
        with Journal(d) as journal:
            for update in some_updates(25, seed=13):
                journal.append(update)
        first = recover(d)
        second = recover(d)
        assert route_set(first.rib) == route_set(second.rib)
        assert first.last_seqno == second.last_seqno == 25

    def test_torn_final_record_discarded(self, tmp_path):
        d = str(tmp_path)
        with Journal(d) as journal:
            for update in some_updates(6):
                journal.append(update)
        path = segment_paths(d)[-1]
        with open(path, "ab") as stream:
            stream.write(b"\x18\x00\x00")  # half a record header
        result = recover(d)
        assert result.torn_bytes == 3
        assert result.last_seqno == 6
        # Reopening for append truncates the torn bytes in place.
        journal = Journal(d)
        assert journal.stats.torn_bytes_discarded == 3
        assert journal.append(some_updates(1)[0]) == 7
        journal.close()
        assert recover(d).last_seqno == 7

    def test_crc_corrupt_mid_segment_raises(self, tmp_path):
        d = str(tmp_path)
        with Journal(d) as journal:
            for update in some_updates(6):
                journal.append(update)
        path = segment_paths(d)[-1]
        # Flip one payload byte of the *second* record: a complete frame
        # with a bad CRC — real corruption, never a torn tail.
        record_bytes = 8 + 24
        offset = 16 + record_bytes + 8 + 2
        with open(path, "rb+") as stream:
            stream.seek(offset)
            byte = stream.read(1)
            stream.seek(offset)
            stream.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(JournalCorrupt, match="CRC mismatch"):
            recover(d)
        with pytest.raises(JournalCorrupt):
            read_segment(path, tail_ok=True)  # tail_ok does not excuse CRCs

    def test_missing_segment_raises(self, tmp_path):
        d = str(tmp_path)
        with Journal(d, segment_bytes=128) as journal:
            for update in some_updates(12):
                journal.append(update)
        paths = segment_paths(d)
        assert len(paths) >= 3
        os.unlink(paths[1])
        with pytest.raises(JournalCorrupt, match="missing segment"):
            recover(d)

    def test_unreadable_checkpoint_falls_back(self, tmp_path):
        d = str(tmp_path)
        rib = small_rib()
        journal = Journal(d)
        first = journal.checkpoint(rib)
        # Fake a newer, damaged checkpoint alongside the good one.
        bogus = os.path.join(d, "checkpoint-00000000000000000009.tbl")
        with open(bogus, "w") as stream:
            stream.write("not a table\n")
        result = recover(d)
        assert result.checkpoints_skipped == 1
        assert result.checkpoint_path == first
        assert route_set(result.rib) == route_set(rib)
        journal.close()


# ---------------------------------------------------------------------------
# journal-then-publish and fault sites
# ---------------------------------------------------------------------------


class TestJournalFaults:
    def test_failed_append_refuses_the_update(self, tmp_path):
        journal = Journal(str(tmp_path))
        txn = TransactionalPoptrie(rib=small_rib(), journal=journal)
        before = route_set(txn.rib)
        with FaultPlan(journal_fail_at=1):
            with pytest.raises(InjectedFault):
                txn.announce(Prefix.parse("172.16.0.0/12"), 5)
        assert route_set(txn.rib) == before
        assert txn.txn_stats.journal_failures == 1
        assert journal.last_seqno == 0
        journal.close()

    def test_torn_write_fault_recovers_clean(self, tmp_path):
        d = str(tmp_path)
        journal = Journal(d)
        updates = some_updates(5)
        for update in updates[:3]:
            journal.append(update)
        with FaultPlan(torn_journal_at=1, torn_journal_bytes=7) as plan:
            with pytest.raises(InjectedFault):
                journal.append(updates[3])
        assert plan.fired == [("torn-journal", 1)]
        # The partial record is on disk; recovery discards exactly it.
        result = recover(d)
        assert result.torn_bytes == 7
        assert result.last_seqno == 3

    def test_fsync_fault_propagates(self, tmp_path):
        journal = Journal(str(tmp_path), fsync_every=1)
        with FaultPlan(fsync_fail_at=1):
            with pytest.raises(InjectedFault):
                journal.append(some_updates(1)[0])

    def test_checkpoint_fault_keeps_previous_state(self, tmp_path):
        d = str(tmp_path)
        rib = small_rib()
        journal = Journal(d)
        journal.checkpoint(rib)
        for update in some_updates(4):
            journal.append(update)
        expected = route_set(recover(d).rib)
        with FaultPlan(checkpoint_fail_at=1):
            with pytest.raises(InjectedFault):
                journal.checkpoint(recover(d).rib)
        # No temporary litter, old checkpoint + tail intact.
        assert not [n for n in os.listdir(d) if n.endswith(".tmp")]
        assert segment_paths(d)
        assert route_set(recover(d).rib) == expected
        journal.close()


# ---------------------------------------------------------------------------
# serve --journal / recover CLI integration (in-process)
# ---------------------------------------------------------------------------


class TestRecoverCli:
    def test_recover_reports_and_writes_table(self, tmp_path, capsys):
        from repro.cli import main

        d = str(tmp_path / "wal")
        with Journal(d) as journal:
            journal.checkpoint(small_rib())
            for update in some_updates(8):
                journal.append(update)
        out = str(tmp_path / "recovered.txt")
        assert main(["recover", d, "-o", out]) == 0
        text = capsys.readouterr().out
        assert "replayed" in text and "verified" in text
        recovered = tableio.load_table(out)
        assert route_set(recovered) == route_set(recover(d).rib)

    def test_recover_compact_truncates(self, tmp_path):
        from repro.cli import main

        d = str(tmp_path / "wal")
        with Journal(d) as journal:
            for update in some_updates(8):
                journal.append(update)
        assert main(["recover", d, "--compact"]) == 0
        assert segment_paths(d) == []
        result = recover(d)
        assert result.checkpoint_seqno == 8
        assert result.replayed == 0

    def test_recover_exits_1_on_corruption(self, tmp_path, capsys):
        from repro.cli import main

        d = str(tmp_path / "wal")
        with Journal(d) as journal:
            for update in some_updates(4):
                journal.append(update)
        path = segment_paths(d)[-1]
        with open(path, "rb+") as stream:
            stream.seek(16 + 8 + 4)  # first record's payload
            stream.write(b"\xff\xff")
        assert main(["recover", d]) == 1
        assert "CRC" in capsys.readouterr().err

    def test_obs_counters_flow(self, tmp_path):
        from repro import obs

        obs.enable()
        try:
            d = str(tmp_path / "wal")
            with Journal(d) as journal:
                for update in some_updates(3):
                    journal.append(update)
                journal.checkpoint(recover(d).rib)
            registry = obs.registry()
            label = os.path.basename(os.path.normpath(d))
            assert registry.counter(
                "repro_journal_appends_total", journal=label
            ).value == 3
            assert registry.counter(
                "repro_journal_checkpoints_total", journal=label
            ).value == 1
            assert registry.counter(
                "repro_journal_fsyncs_total", journal=label
            ).value >= 3
            assert registry.gauge(
                "repro_journal_recovery_seconds", journal=label
            ).value > 0
        finally:
            obs.disable()


def test_recovered_table_compiles_identically(tmp_path):
    """Byte-identical compile: recovery loses nothing a build can see."""
    from repro.parallel.image import structure_to_bytes

    d = str(tmp_path)
    rib = small_rib()
    updates = some_updates(30, seed=21)
    with Journal(d) as journal:
        journal.checkpoint(rib)
        oracle = TransactionalPoptrie(rib=small_rib(), journal=journal)
        oracle.apply_stream(updates, on_error="skip")
    recovered = recover(d)
    assert structure_to_bytes(Poptrie.from_rib(recovered.rib)) == structure_to_bytes(
        Poptrie.from_rib(oracle.rib)
    )
