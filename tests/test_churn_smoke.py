"""Tier-1 churn smoke: the full pipeline at toy scale.

One incremental engine and one rebuild fallback go through the real
served pipeline — OP_UPDATE wire batches, journal fsync, engine apply,
RCU publish — with a concurrent load generator, exactly as
``repro churn`` and the CI churn-smoke job run it, just small enough
for the unit-test tier (tens of updates, sub-second schedule).
"""

from __future__ import annotations

import pytest

from repro.bench.churn_scenario import run_churn_bench


@pytest.fixture(scope="module")
def churn_result():
    return run_churn_bench(
        dataset_name="RV-linx-p52",
        scale=0.001,
        engines=("Poptrie18", "DIR-24-8"),
        regimes=("steady",),
        update_count=48,
        update_rate=600.0,
        update_batch=8,
        lookup_rate=200.0,
        lookup_connections=1,
        settle_timeout=60.0,
        seed=11,
    )


def test_churn_rows_cover_the_engine_matrix(churn_result):
    rows = churn_result["rows"]
    assert [(r["engine"], r["regime"]) for r in rows] == [
        ("Poptrie18", "steady"),
        ("DIR-24-8", "steady"),
    ]
    engines = {r["engine"]: r for r in rows}
    assert engines["Poptrie18"]["update_engine"] == "incremental"
    assert engines["Poptrie18"]["supports_incremental"]
    assert engines["DIR-24-8"]["update_engine"] == "rebuild"
    assert not engines["DIR-24-8"]["supports_incremental"]


def test_churn_applies_updates_without_lookup_errors(churn_result):
    for row in churn_result["rows"]:
        assert row["updates"]["errors"] == 0, row
        assert row["updates"]["applied"] > 0, row
        assert row["lookup"]["errors"] == 0, row
        assert row["lookup"]["completed"] > 0, row


def test_churn_measures_the_full_pipeline(churn_result):
    for row in churn_result["rows"]:
        stages = row["updates"]["stages_us"]
        assert set(stages) == {"apply", "fsync", "publish"}, row
        assert row["updates"]["wire_latency_us"]["p99"] > 0
        assert row["lookup_during_churn_us"]["p99"] > 0
        # Every wire batch is one RCU publication in the in-process
        # pipeline, and waited swaps record their epoch drain.
        assert row["rcu"]["swaps"] > 0, row
        assert row["rcu"]["swap_rate_hz"] > 0
        journal = row["journal"]
        assert journal["appends"] >= row["updates"]["applied"]
        assert journal["fsyncs"] > 0


def test_churn_convergence_observed(churn_result):
    for row in churn_result["rows"]:
        conv = row["convergence"]
        assert conv["observed"], conv
        assert conv["lag_s"] is not None and conv["lag_s"] >= 0
        assert conv["ack_us"] > 0
