"""Unit and property tests for the Poptrie structure itself."""

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import boundary_keys, make_random_rib, random_keys

from repro.core.poptrie import DIRECT_LEAF, Poptrie, PoptrieConfig
from repro.errors import StructuralLimitError
from repro.net.fib import NO_ROUTE
from repro.net.prefix import Prefix
from repro.net.rib import Rib


def rib_of(*routes, width=32):
    rib = Rib(width=width)
    for text, hop in routes:
        rib.insert(Prefix.parse(text), hop)
    return rib


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = PoptrieConfig()
        assert cfg.k == 6 and cfg.s == 18 and cfg.use_leafvec

    def test_node_bytes(self):
        assert PoptrieConfig(use_leafvec=False).node_bytes == 16
        assert PoptrieConfig(use_leafvec=True).node_bytes == 24

    def test_leaf_bytes(self):
        assert PoptrieConfig(leaf_bits=16).leaf_bytes == 2
        assert PoptrieConfig(leaf_bits=32).leaf_bytes == 4

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            PoptrieConfig(k=7)

    def test_rejects_bad_leaf_bits(self):
        with pytest.raises(ValueError):
            PoptrieConfig(leaf_bits=8)

    def test_rejects_s_wider_than_address(self):
        with pytest.raises(ValueError):
            Poptrie(PoptrieConfig(s=40), width=32)

    def test_name_convention(self):
        rib = rib_of(("10.0.0.0/8", 1))
        assert Poptrie.from_rib(rib, PoptrieConfig(s=18)).name == "Poptrie18"
        assert Poptrie.from_rib(rib, PoptrieConfig(s=0)).name == "Poptrie0"
        assert "basic" in Poptrie.from_rib(
            rib, PoptrieConfig(s=0, use_leafvec=False)
        ).name


class TestPaperWorkedExample:
    """The k = 2 configuration of the paper's Figures 1–4."""

    def test_two_level_lookup(self):
        # An 8-bit toy family: routes 01b/2 -> A and 0110b/4 -> B.
        rib = Rib(width=8)
        rib.insert(Prefix.from_bits("01", 8), 1)
        rib.insert(Prefix.from_bits("0110", 8), 2)
        trie = Poptrie.from_rib(rib, PoptrieConfig(k=2, s=0))
        # Figure 4's query 0110 0111b must find the longer match.
        assert trie.lookup(0b01100111) == 2
        # 0100 0000b stays on the /2.
        assert trie.lookup(0b01000000) == 1
        # 1000 0000b matches nothing.
        assert trie.lookup(0b10000000) == NO_ROUTE

    def test_root_vector_marks_internal_slot(self):
        rib = Rib(width=8)
        rib.insert(Prefix.from_bits("01", 8), 1)
        rib.insert(Prefix.from_bits("0110", 8), 2)
        trie = Poptrie.from_rib(rib, PoptrieConfig(k=2, s=0))
        root_vector = trie.vec[trie.root_index]
        assert root_vector == 0b0010  # only chunk value 01b descends


class TestEquivalenceExhaustive:
    @pytest.mark.parametrize(
        "config",
        [
            PoptrieConfig(k=6, s=0),
            PoptrieConfig(k=6, s=4),
            PoptrieConfig(k=4, s=7),
            PoptrieConfig(k=2, s=0),
            PoptrieConfig(k=6, s=0, use_leafvec=False),
            PoptrieConfig(k=6, s=8, use_leafvec=False),
        ],
    )
    def test_all_addresses_width_16(self, config):
        rib = make_random_rib(120, seed=77, width=16, max_nexthop=30)
        trie = Poptrie.from_rib(rib, config)
        for address in range(1 << 16):
            assert trie.lookup(address) == rib.lookup(address)

    def test_empty_table_always_misses(self):
        trie = Poptrie.from_rib(Rib(width=16), PoptrieConfig(k=6, s=4))
        for address in range(1 << 16):
            assert trie.lookup(address) == NO_ROUTE


class TestEquivalenceSampled:
    @pytest.mark.parametrize("s", [0, 16, 18])
    def test_ipv4_boundaries_and_random(self, bgp_rib, s):
        trie = Poptrie.from_rib(bgp_rib, PoptrieConfig(s=s))
        for key in boundary_keys(bgp_rib) + random_keys(5000, seed=s + 1):
            assert trie.lookup(key) == bgp_rib.lookup(key)

    def test_basic_mode(self, bgp_rib):
        trie = Poptrie.from_rib(bgp_rib, PoptrieConfig(s=16, use_leafvec=False))
        for key in random_keys(3000, seed=2):
            assert trie.lookup(key) == bgp_rib.lookup(key)

    def test_ipv6(self):
        rib = make_random_rib(300, seed=5, width=128, lengths=list(range(16, 65)))
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        for key in boundary_keys(rib) + random_keys(1000, seed=3, width=128):
            assert trie.lookup(key) == rib.lookup(key)

    def test_ipv6_no_direct_pointing(self):
        rib = make_random_rib(200, seed=6, width=128, lengths=[32, 48, 64])
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=0))
        for key in boundary_keys(rib):
            assert trie.lookup(key) == rib.lookup(key)


class TestDirectPointing:
    def test_short_route_becomes_tagged_leaf(self):
        rib = rib_of(("10.0.0.0/8", 3))
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        entry = trie.direct[0x0A00]
        assert entry & DIRECT_LEAF
        assert entry & (DIRECT_LEAF - 1) == 3

    def test_deep_route_creates_subtree(self):
        rib = rib_of(("10.0.0.0/24", 3))
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        entry = trie.direct[0x0A00]
        assert not entry & DIRECT_LEAF
        assert trie.inode_count >= 1

    def test_direct_array_size(self):
        rib = rib_of(("10.0.0.0/8", 1))
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=12))
        assert len(trie.direct) == 1 << 12

    def test_s0_has_no_direct_array(self):
        rib = rib_of(("10.0.0.0/8", 1))
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=0))
        assert len(trie.direct) == 0


class TestDepthOf:
    def test_direct_hit_is_depth_zero(self):
        rib = rib_of(("10.0.0.0/8", 1))
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        assert trie.depth_of(Prefix.parse("10.1.1.1/32").value) == 0

    def test_one_node_for_24_at_s18(self):
        # Section 4.3's rationale for s = 18: /24s need one node traversal.
        rib = rib_of(("10.0.0.0/24", 1), ("10.0.0.0/8", 2))
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=18))
        assert trie.depth_of(Prefix.parse("10.0.0.1/32").value) == 1

    def test_host_route_depth(self):
        rib = rib_of(("10.0.0.1/32", 1))
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=18))
        # 18 + 6 + 6 + 6 > 32: host routes resolve within three levels.
        assert trie.depth_of(Prefix.parse("10.0.0.1/32").value) <= 3


class TestStructuralLimits:
    def test_16bit_leaves_reject_large_fib(self):
        rib = rib_of(("10.0.0.0/8", 1))
        with pytest.raises(StructuralLimitError):
            Poptrie.from_rib(rib, PoptrieConfig(leaf_bits=16), fib_size=70000)

    def test_32bit_leaves_accept_large_fib(self):
        rib = rib_of(("10.0.0.0/8", 1))
        trie = Poptrie.from_rib(rib, PoptrieConfig(leaf_bits=32), fib_size=70000)
        assert trie.lookup(Prefix.parse("10.0.0.1/32").value) == 1

    def test_write_leaf_checks_width(self):
        trie = Poptrie(PoptrieConfig(leaf_bits=16))
        trie.alloc_leaves(1)
        with pytest.raises(StructuralLimitError):
            trie.write_leaf(0, 1 << 16)


class TestMemoryAccounting:
    def test_leafvec_compresses_leaves(self, bgp_rib):
        basic = Poptrie.from_rib(bgp_rib, PoptrieConfig(s=16, use_leafvec=False))
        leafvec = Poptrie.from_rib(bgp_rib, PoptrieConfig(s=16, use_leafvec=True))
        # Table 2: the leafvec removes the overwhelming majority of leaves.
        assert leafvec.leaf_count < basic.leaf_count / 5

    def test_memory_bytes_formula(self):
        rib = rib_of(("10.0.0.0/24", 1))
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        expected = trie.inode_count * 24 + trie.leaf_count * 2 + 4 * (1 << 16)
        assert trie.memory_bytes() == expected

    def test_allocated_at_least_used(self, bgp_rib):
        trie = Poptrie.from_rib(bgp_rib, PoptrieConfig(s=16))
        assert trie.allocated_bytes() >= trie.memory_bytes()


class TestIterNodes:
    def test_reachable_nodes_are_live(self, bgp_rib):
        trie = Poptrie.from_rib(bgp_rib, PoptrieConfig(s=16))
        live = trie.node_alloc.live_blocks()
        spans = sorted((off, off + size) for off, size in live.items())

        def in_live(index):
            import bisect

            i = bisect.bisect_right(spans, (index, float("inf"))) - 1
            return i >= 0 and spans[i][0] <= index < spans[i][1]

        count = 0
        for index, *_ in trie.iter_nodes():
            assert in_live(index), f"node {index} outside live allocations"
            count += 1
        assert count == trie.inode_count

    def test_every_leaf_slot_has_a_run_start(self, bgp_rib):
        """For every leaf slot v, popcount(leafvec below v+1) ≥ 1 — i.e. the
        Algorithm 2 index computation never underflows."""
        trie = Poptrie.from_rib(bgp_rib, PoptrieConfig(s=16))
        slots = 1 << trie.k
        for _, vector, leafvec, _, _ in trie.iter_nodes():
            for v in range(slots):
                if not (vector >> v) & 1:  # leaf slot
                    assert leafvec & ((2 << v) - 1), (
                        f"leaf slot {v} has no run start at or below it"
                    )


class TestTracedLookup:
    def test_traced_matches_plain(self, bgp_rib):
        from repro.mem.layout import AccessTrace

        trie = Poptrie.from_rib(bgp_rib, PoptrieConfig(s=16))
        trace = AccessTrace()
        for key in random_keys(500, seed=4):
            trace.reset()
            assert trie.lookup_traced(key, trace) == trie.lookup(key)

    def test_trace_contents(self):
        from repro.mem.layout import AccessTrace

        rib = rib_of(("10.0.0.0/24", 1))
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        trace = AccessTrace()
        trie.lookup_traced(Prefix.parse("10.0.0.1/32").value, trace)
        # direct entry + ≥1 node + leaf
        assert len(trace.accesses) >= 3
        assert trace.instructions > 0

    def test_direct_leaf_is_single_access(self):
        from repro.mem.layout import AccessTrace

        rib = rib_of(("10.0.0.0/8", 1))
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        trace = AccessTrace()
        trie.lookup_traced(Prefix.parse("10.1.1.1/32").value, trace)
        assert len(trace.accesses) == 1


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=100_000),
    s=st.sampled_from([0, 5, 10]),
)
def test_property_poptrie_equals_radix(seed, s):
    """For arbitrary route tables, Poptrie lookups equal RIB lookups on
    every prefix boundary and a random sample (invariant 1 of DESIGN.md)."""
    rib = make_random_rib(50, seed=seed, width=16, max_nexthop=20)
    trie = Poptrie.from_rib(rib, PoptrieConfig(k=6, s=s))
    keys = boundary_keys(rib) + random_keys(512, seed=seed + 1, width=16)
    for key in keys:
        assert trie.lookup(key) == rib.lookup(key)
