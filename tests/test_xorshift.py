"""Tests for the Marsaglia xorshift generators."""

import numpy as np
import pytest

from repro.data.xorshift import Xorshift32, Xorshift64, Xorshift128, xorshift32_array


def reference_xorshift32(seed, count):
    """Independent straight-from-the-paper transcription."""
    out = []
    x = seed
    for _ in range(count):
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        out.append(x)
    return out


class TestXorshift32:
    def test_matches_reference(self):
        g = Xorshift32(2463534242)
        assert [g.next() for _ in range(100)] == reference_xorshift32(
            2463534242, 100
        )

    def test_outputs_are_32_bit(self):
        g = Xorshift32(123)
        assert all(0 <= g.next() < (1 << 32) for _ in range(1000))

    def test_no_short_cycles(self):
        g = Xorshift32(42)
        seen = {g.next() for _ in range(100_000)}
        assert len(seen) == 100_000  # period is 2^32 - 1; no repeats here

    def test_rejects_zero_seed(self):
        with pytest.raises(ValueError):
            Xorshift32(0)

    def test_deterministic_per_seed(self):
        assert Xorshift32(7).next() == Xorshift32(7).next()
        assert Xorshift32(7).next() != Xorshift32(8).next()


class TestXorshift64:
    def test_outputs_are_64_bit(self):
        g = Xorshift64(99)
        assert all(0 <= g.next() < (1 << 64) for _ in range(1000))

    def test_rejects_zero_seed(self):
        with pytest.raises(ValueError):
            Xorshift64(0)


class TestXorshift128:
    def test_distinct_stream(self):
        g = Xorshift128()
        values = [g.next() for _ in range(10_000)]
        assert len(set(values)) > 9_990

    def test_rejects_all_zero_state(self):
        with pytest.raises(ValueError):
            Xorshift128(0, 0, 0, 0)

    def test_outputs_are_32_bit(self):
        g = Xorshift128()
        assert all(0 <= g.next() < (1 << 32) for _ in range(1000))


class TestArrayGenerator:
    def test_matches_scalar_stream(self):
        array = xorshift32_array(50, seed=2463534242)
        assert array.tolist() == reference_xorshift32(2463534242, 50)

    def test_dtype_and_length(self):
        array = xorshift32_array(10)
        assert array.dtype == np.uint64 and len(array) == 10
