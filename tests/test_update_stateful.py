"""Hypothesis stateful testing of the incremental update engine.

A rule-based state machine drives arbitrary interleavings of announce,
re-announce, withdraw and lookup against an :class:`UpdatablePoptrie`,
with the RIB as the oracle.  Hypothesis explores and *shrinks* operation
sequences, so a failure here comes with a minimal reproducing script —
much stronger than the fixed-seed fuzzing elsewhere in the suite.
"""

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.core.update import UpdatablePoptrie
from repro.net.prefix import Prefix

prefix_values = st.tuples(
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=1, max_value=32),
)

addresses = st.integers(min_value=0, max_value=(1 << 32) - 1)


def to_prefix(raw):
    value, length = raw
    mask = ((1 << length) - 1) << (32 - length)
    return Prefix(value & mask, length, 32)


class UpdateMachine(RuleBasedStateMachine):
    @initialize(s=st.sampled_from([0, 10, 16]))
    def setup(self, s):
        self.up = UpdatablePoptrie(PoptrieConfig(s=s))
        self.live = {}

    @rule(raw=prefix_values, hop=st.integers(min_value=1, max_value=40))
    def announce(self, raw, hop):
        prefix = to_prefix(raw)
        self.up.announce(prefix, hop)
        self.live[prefix] = hop

    @precondition(lambda self: self.live)
    @rule(pick=st.randoms(use_true_random=False),
          hop=st.integers(min_value=1, max_value=40))
    def reannounce(self, pick, hop):
        prefix = pick.choice(sorted(self.live, key=lambda p: p.sort_key()))
        self.up.announce(prefix, hop)
        self.live[prefix] = hop

    @precondition(lambda self: self.live)
    @rule(pick=st.randoms(use_true_random=False))
    def withdraw(self, pick):
        prefix = pick.choice(sorted(self.live, key=lambda p: p.sort_key()))
        self.up.withdraw(prefix)
        del self.live[prefix]

    @rule(address=addresses)
    def lookup_matches_rib(self, address):
        assert self.up.lookup(address) == self.up.rib.lookup(address)

    @invariant()
    def boundaries_match_rib(self):
        # Check the boundary addresses of a few live prefixes each step.
        for prefix in list(self.live)[:5]:
            for key in (prefix.first_address(), prefix.last_address()):
                assert self.up.lookup(key) == self.up.rib.lookup(key)

    def teardown(self):
        if not hasattr(self, "up"):
            return
        # Structure equals a fresh compile (invariant 4 of DESIGN.md).
        rebuilt = Poptrie.from_rib(self.up.rib, self.up.trie.config)
        assert rebuilt.inode_count == self.up.trie.inode_count
        assert rebuilt.leaf_count == self.up.trie.leaf_count
        self.up.trie.node_alloc.check_invariants()
        self.up.trie.leaf_alloc.check_invariants()


TestUpdateStateMachine = UpdateMachine.TestCase
TestUpdateStateMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
