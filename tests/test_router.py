"""Tests for the mini forwarding plane."""

import numpy as np
import pytest

from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.net.values import Fib, NextHop
from repro.net.prefix import Prefix
from repro.net.rib import Rib
from repro.router import ForwardingPlane, Packet, synth_packets
from repro.router.packet import destinations_array


@pytest.fixture()
def plane():
    fib = Fib()
    port_a = fib.intern(NextHop("198.51.100.1", port=1))
    port_b = fib.intern(NextHop("198.51.100.2", port=2))
    rib = Rib()
    rib.insert(Prefix.parse("10.0.0.0/8"), port_a)
    rib.insert(Prefix.parse("192.0.2.0/24"), port_b)
    return ForwardingPlane(Poptrie.from_rib(rib, PoptrieConfig(s=16)), fib)


def key(text: str) -> int:
    return Prefix.parse(text + "/32").value


class TestForward:
    def test_routes_to_correct_port(self, plane):
        assert plane.forward(Packet(key("10.1.2.3"))) == 1
        assert plane.forward(Packet(key("192.0.2.9"))) == 2

    def test_no_route_drops(self, plane):
        assert plane.forward(Packet(key("203.0.113.1"))) is None
        assert plane.dropped_no_route == 1

    def test_ttl_expiry_drops(self, plane):
        assert plane.forward(Packet(key("10.0.0.1"), ttl=1)) is None
        assert plane.dropped_ttl == 1

    def test_counters(self, plane):
        for _ in range(5):
            plane.forward(Packet(key("10.0.0.1"), size=100))
        counters = plane.ports[1]
        assert counters.packets == 5 and counters.bytes == 500
        assert plane.total_forwarded() == 5


class TestBatch:
    def test_matches_scalar(self, plane):
        destinations = np.array(
            [key("10.1.1.1"), key("192.0.2.4"), key("203.0.113.9")],
            dtype=np.uint64,
        )
        ports = plane.forward_batch(destinations)
        assert ports.tolist() == [1, 2, -1]
        assert plane.dropped_no_route == 1

    def test_batch_counters(self, plane):
        destinations = np.array([key("10.1.1.1")] * 10, dtype=np.uint64)
        plane.forward_batch(destinations, size=64)
        assert plane.ports[1].packets == 10
        assert plane.ports[1].bytes == 640


class TestPackets:
    def test_synth_packets(self):
        packets = list(synth_packets([1, 2, 3], ttl=9))
        assert [p.dst for p in packets] == [1, 2, 3]
        assert all(p.ttl == 9 for p in packets)

    def test_decremented(self):
        p = Packet(5, ttl=9)
        assert p.decremented().ttl == 8

    def test_destinations_array(self):
        packets = [Packet(7), Packet(9)]
        assert destinations_array(packets).tolist() == [7, 9]
