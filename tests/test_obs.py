"""Tests for the observability layer (repro.obs + its integrations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.lookup.radix import RadixLookup
from repro.mem.buddy import BuddyAllocator
from repro.obs.metrics import (
    DEPTH_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
)
from repro.obs.tracing import clear_spans, recent_spans, span

from tests.conftest import make_random_rib


@pytest.fixture(autouse=True)
def obs_disabled():
    """Every test starts and ends with observability off."""
    obs.disable()
    clear_spans()
    yield
    obs.disable()
    clear_spans()


class TestMetricsPrimitives:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total", "help")
        c.inc()
        c.inc(4)
        assert c.value == 5
        # Same (name, labels) -> same instrument.
        assert reg.counter("x_total") is c

    def test_labels_split_children(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", structure="A")
        b = reg.counter("x_total", structure="B")
        assert a is not b
        a.inc()
        snap = reg.snapshot()
        assert snap['x_total{structure="A"}'] == 1
        assert snap['x_total{structure="B"}'] == 0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")

    def test_gauge_set_inc_dec(self):
        g = MetricsRegistry().gauge("g")
        g.set(10)
        g.inc(2.5)
        g.dec()
        assert g.value == 11.5

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("d", buckets=DEPTH_BUCKETS)
        for v in (0, 0, 3, 7, 100):
            h.observe(v)
        cumulative = dict(h.cumulative())
        assert cumulative[0] == 2
        assert cumulative[3] == 3
        assert cumulative[8] == 4
        assert cumulative[float("inf")] == 5
        assert h.count == 5 and h.sum == 110
        assert h.percentile(50) == 3
        # Tail bucket reports the largest finite bound.
        assert h.percentile(100) == DEPTH_BUCKETS[-1]

    def test_render_prometheus_format(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "A thing.", structure="X").inc(2)
        reg.histogram("h", "H.", buckets=(1, 2)).observe(1.5)
        text = reg.render()
        assert "# HELP a_total A thing." in text
        assert "# TYPE a_total counter" in text
        assert 'a_total{structure="X"} 2' in text
        assert 'h_bucket{le="2"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_sum 1.5" in text
        assert "h_count 1" in text

    def test_null_registry_is_free(self):
        NULL_REGISTRY.counter("x").inc()
        NULL_REGISTRY.gauge("y").set(3)
        NULL_REGISTRY.histogram("z").observe(1)
        assert NULL_REGISTRY.render() == ""
        assert NULL_REGISTRY.snapshot() == {}
        assert len(NULL_REGISTRY) == 0


class TestEnableDisable:
    def test_toggle(self):
        assert not obs.enabled()
        live = obs.enable()
        assert obs.enabled() and obs.registry() is live
        # Idempotent: re-enabling keeps the registry (and its state).
        live.counter("kept_total").inc()
        assert obs.enable() is live
        obs.disable()
        assert not obs.enabled()
        assert obs.registry() is NULL_REGISTRY

    def test_enable_with_explicit_target(self):
        mine = MetricsRegistry()
        assert obs.enable(mine) is mine
        assert obs.registry() is mine


class TestLookupInstrumentation:
    @pytest.fixture(scope="class")
    def rib(self):
        return make_random_rib(300, seed=3)

    def test_disabled_path_is_untouched(self, rib):
        """The compile-out guarantee: while obs is off, the structure's
        scalar path is the plain class method and nothing mutates any
        registry state."""
        structure = RadixLookup.from_rib(rib)
        assert "lookup" not in structure.__dict__
        assert "lookup_batch" not in structure.__dict__
        structure.lookup(0x0A000001)
        structure.lookup_batch(np.array([1, 2], dtype=np.uint64))
        assert "lookup" not in structure.__dict__
        assert len(obs.registry()) == 0
        assert obs.registry().render() == ""

    def test_enable_obs_counts(self, rib):
        reg = obs.enable()
        structure = RadixLookup.from_rib(rib)
        structure.enable_obs()
        for key in (0, 0xFFFFFFFF, 0x0A000001):
            structure.lookup(key)
        structure.lookup_batch(np.arange(10, dtype=np.uint64))
        snap = reg.snapshot()
        assert snap['repro_lookups_total{structure="Radix"}'] == 3
        assert snap['repro_lookup_batches_total{structure="Radix"}'] == 1
        assert snap['repro_lookup_batch_keys_total{structure="Radix"}'] == 10
        stats = structure.stats()
        assert stats["observed"] and stats["lookups"] == 3
        assert stats["batch_keys"] == 10

    def test_depth_histogram_for_poptrie(self, rib):
        from repro.core.poptrie import Poptrie, PoptrieConfig

        reg = obs.enable()
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        trie.enable_obs()
        for key in range(0, 1 << 32, 1 << 27):
            trie.lookup(key)
        families = {f.name for f in reg.families()}
        assert "repro_lookup_depth" in families
        assert "repro_lookup_direct_hits_total" in families
        hist = reg.histogram(
            "repro_lookup_depth", buckets=DEPTH_BUCKETS, structure=trie.name
        )
        assert hist.count == 32

    def test_disable_obs_restores_class_method(self, rib):
        obs.enable()
        structure = RadixLookup.from_rib(rib)
        structure.enable_obs()
        assert "lookup" in structure.__dict__
        structure.disable_obs()
        assert "lookup" not in structure.__dict__
        assert structure._obs_registry is None

    def test_getstate_drops_wrappers(self, rib):
        import pickle

        obs.enable()
        structure = RadixLookup.from_rib(rib)
        structure.enable_obs()
        clone = pickle.loads(pickle.dumps(structure))
        assert "lookup" not in clone.__dict__
        assert clone.lookup(0x0A000001) == structure.lookup(0x0A000001)

    def test_stats_schema_is_stable(self, rib):
        """The base stats() keys every consumer may rely on."""
        base_keys = {
            "name", "type", "memory_bytes", "memory_mib",
            "observed", "lookups", "batch_keys",
        }
        from repro.lookup.registry import standard_roster

        for structure in standard_roster(rib).values():
            stats = structure.stats()
            assert base_keys <= set(stats), structure.name
            assert stats["observed"] is False


class TestTracing:
    def test_spans_record_when_enabled(self):
        reg = obs.enable()
        with span("outer"):
            with span("inner"):
                pass
        records = recent_spans()
        names = [r.name for r in records]
        assert names == ["inner", "outer"]  # completion order
        inner = records[0]
        assert inner.parent == "outer" and inner.depth == 1
        hist = reg.histogram("repro_span_seconds", span="outer")
        assert hist.count == 1

    def test_spans_free_when_disabled(self):
        with span("ignored"):
            pass
        assert recent_spans() == []

    def test_recent_spans_filter(self):
        obs.enable()
        with span("a"):
            pass
        with span("b"):
            pass
        assert [r.name for r in recent_spans("a")] == ["a"]


class TestAllocatorObs:
    def test_stats_and_fragmentation(self):
        alloc = BuddyAllocator(capacity=16, auto_grow=False)
        a = alloc.alloc(4)
        b = alloc.alloc(4)
        alloc.free(a)
        stats = alloc.stats()
        assert stats["used_slots"] == 4
        assert stats["high_water"] == 8
        assert stats["largest_free_block"] == 8
        # 12 free slots, largest block 8 -> 1/3 fragmented.
        assert stats["fragmentation"] == pytest.approx(1 / 3)
        alloc.free(b)
        assert alloc.fragmentation() == 0.0

    def test_high_water_survives_snapshot_restore(self):
        alloc = BuddyAllocator(capacity=16)
        x = alloc.alloc(8)
        snap = alloc.snapshot()
        alloc.free(x)
        alloc.restore(snap)
        assert alloc.high_water == 8

    def test_publish_obs_exports_gauges(self):
        reg = obs.enable()
        alloc = BuddyAllocator(capacity=16)
        alloc.alloc(4)
        alloc.publish_obs("test.pool", slot_bytes=8)
        snap = reg.snapshot()
        assert snap['repro_allocator_used_slots{pool="test.pool"}'] == 4
        assert snap['repro_allocator_live_bytes{pool="test.pool"}'] == 32

    def test_publish_obs_noop_when_disabled(self):
        BuddyAllocator(capacity=16).publish_obs("test.pool")
        assert obs.registry().render() == ""


class TestUpdateAndTxnObs:
    def test_txn_outcomes_counted(self):
        from repro.errors import UpdateRejectedError
        from repro.net.prefix import Prefix
        from repro.robust.txn import TransactionalPoptrie

        reg = obs.enable()
        up = TransactionalPoptrie()
        up.announce(Prefix.parse("10.0.0.0/8"), 1)
        with pytest.raises(UpdateRejectedError):
            up.withdraw(Prefix.parse("172.16.0.0/12"))  # absent prefix
        snap = reg.snapshot()
        assert snap['repro_txn_outcomes_total{outcome="commit"}'] == 1
        assert snap['repro_txn_outcomes_total{outcome="rejected"}'] == 1
        assert snap['repro_updates_total{engine="incremental"}'] == 1

    def test_degraded_rebuild_keeps_instrumentation(self):
        from repro.net.prefix import Prefix
        from repro.robust.txn import TransactionalPoptrie

        reg = obs.enable()
        up = TransactionalPoptrie(rebuild_threshold=-1)  # any update degrades
        up.trie.enable_obs()
        up.announce(Prefix.parse("10.0.0.0/8"), 1)
        assert up.trie._obs_registry is reg  # survived the trie swap
        snap = reg.snapshot()
        assert snap['repro_txn_outcomes_total{outcome="threshold_rebuild"}'] == 1
        assert snap['repro_updates_total{engine="rebuild"}'] == 1


class TestPipelineObs:
    def test_run_publishes_metrics(self):
        from repro.data.synth import generate_table
        from repro.lookup.registry import get
        from repro.router.pipeline import ForwardingPipeline

        rib, fib = generate_table(n_prefixes=300, n_nexthops=8, seed=11)
        structure = get("Poptrie16").from_rib(rib)
        reg = obs.enable()
        pipeline = ForwardingPipeline(structure, fib, batch_size=16)
        destinations = list(range(0, 1 << 30, 1 << 21))
        pipeline.run(destinations)
        snap = reg.snapshot()
        assert snap["repro_pipeline_packets_total"] == len(destinations)
        assert snap["repro_pipeline_batch_size"] == 16
        hist = reg.histogram("repro_pipeline_latency_us")
        assert hist.count == len(destinations)
        stats = pipeline.stats()
        assert stats["forwarded"] + stats["no_route_drops"] == len(destinations)
        assert [r.name for r in recent_spans("pipeline.run")] == ["pipeline.run"]

    def test_run_reports_same_without_obs(self):
        from repro.data.synth import generate_table
        from repro.lookup.registry import get
        from repro.router.pipeline import ForwardingPipeline

        rib, fib = generate_table(n_prefixes=300, n_nexthops=8, seed=11)
        structure = get("Poptrie16").from_rib(rib)
        destinations = list(range(0, 1 << 30, 1 << 21))
        silent = ForwardingPipeline(structure, fib, batch_size=16)
        report = silent.run(destinations)
        obs.enable()
        observed = ForwardingPipeline(structure, fib, batch_size=16)
        assert observed.run(destinations) == report
        assert obs.registry().render() != ""
