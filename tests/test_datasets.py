"""Tests for the Table 1 dataset registry."""

import pytest

from repro.data.datasets import (
    DATASETS,
    EVALUATION_TABLES,
    SYNTHETIC_TABLES,
    load_dataset,
    load_dataset_v6,
)


class TestRegistry:
    def test_has_all_39_rows(self):
        # 31 RouteViews + 3 REAL (Table 1) + 4 SYN (Section 4.1) = 39... the
        # paper's Table 1 lists 35 evaluation tables plus the 4 SYN rows.
        assert len(DATASETS) == 39
        assert len(EVALUATION_TABLES) == 35
        assert len(SYNTHETIC_TABLES) == 4

    def test_published_sizes_recorded(self):
        assert DATASETS["REAL-Tier1-A"].prefixes == 531489
        assert DATASETS["REAL-Tier1-A"].nexthops == 13
        assert DATASETS["RV-saopaulo-p25"].prefixes == 532637
        assert DATASETS["SYN2-Tier1-B"].prefixes == 876944

    def test_real_tables_have_igp(self):
        for name in ("REAL-Tier1-A", "REAL-Tier1-B", "REAL-RENET"):
            assert DATASETS[name].igp_fraction > 0

    def test_rv_tables_have_no_igp(self):
        assert DATASETS["RV-linx-p46"].igp_fraction == 0

    def test_syn_tables_reference_bases(self):
        assert DATASETS["SYN1-Tier1-A"].base == "REAL-Tier1-A"
        assert DATASETS["SYN2-Tier1-B"].base == "REAL-Tier1-B"


class TestLoading:
    def test_scaled_size(self):
        ds = load_dataset("RV-nwax-p1", scale=0.01)
        expected = int(DATASETS["RV-nwax-p1"].prefixes * 0.01)
        assert abs(len(ds) - expected) <= expected * 0.02 + 5

    def test_nexthop_count_not_scaled(self):
        ds = load_dataset("RV-nwax-p1", scale=0.01)
        assert len(ds.fib) == DATASETS["RV-nwax-p1"].nexthops

    def test_cache_returns_same_object(self):
        a = load_dataset("RV-nwax-p2", scale=0.01)
        b = load_dataset("RV-nwax-p2", scale=0.01)
        assert a is b

    def test_cache_bypass(self):
        a = load_dataset("RV-nwax-p2", scale=0.01, cache=False)
        b = load_dataset("RV-nwax-p2", scale=0.01, cache=False)
        assert a is not b

    def test_deterministic_across_loads(self):
        a = load_dataset("RV-nwax-p5", scale=0.01, cache=False)
        b = load_dataset("RV-nwax-p5", scale=0.01, cache=False)
        assert list(a.rib.routes()) == list(b.rib.routes())

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("RV-nonexistent-p0")


class TestSynthetic:
    def test_syn1_is_larger_than_base(self):
        base = load_dataset("REAL-Tier1-A", scale=0.02)
        syn1 = load_dataset("SYN1-Tier1-A", scale=0.02)
        assert len(syn1) > len(base)

    def test_syn2_is_larger_than_syn1(self):
        syn1 = load_dataset("SYN1-Tier1-A", scale=0.02)
        syn2 = load_dataset("SYN2-Tier1-A", scale=0.02)
        assert len(syn2) > len(syn1)

    def test_syn2_has_25s(self):
        syn2 = load_dataset("SYN2-Tier1-A", scale=0.02)
        assert any(p.length == 25 for p, _ in syn2.rib.routes())

    def test_syn1_stays_at_24(self):
        syn1 = load_dataset("SYN1-Tier1-A", scale=0.02)
        base_max = max(
            p.length for p, _ in load_dataset("REAL-Tier1-A", scale=0.02).rib.routes()
        )
        syn_bgp_max = max(
            p.length for p, _ in syn1.rib.routes() if p.length <= 24
        )
        assert syn_bgp_max <= 24
        # IGP routes pass through unsplit.
        assert max(p.length for p, _ in syn1.rib.routes()) == base_max

    def test_syn_fib_covers_strided_hops(self):
        syn1 = load_dataset("SYN1-Tier1-A", scale=0.02)
        max_hop = max(hop for _, hop in syn1.rib.routes())
        assert len(syn1.fib) >= max_hop


class TestIPv6Dataset:
    def test_loads(self):
        ds = load_dataset_v6(scale=0.05)
        assert len(ds) > 500
        assert ds.rib.width == 128
