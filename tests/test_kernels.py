"""The stateless branchless kernels (`repro.lookup.kernels`).

Contract under test, registry-wide:

- every kernel-capable algorithm's batch path is lane-for-lane identical
  to its scalar ``lookup`` — on random RIBs, on adversarial ones
  (default-route-only, /32 swarms, covering-route shard slices), and on
  boundary keys;
- the same kernel produces identical results whether its state came
  from a live structure, a ``bytes`` image, an mmapped image file, or a
  ``SharedMemory`` segment;
- disabling dispatch (:func:`~repro.lookup.kernels.kernels_disabled`)
  falls back to the legacy numpy templates, which must agree too.
"""

from __future__ import annotations

import gc
import mmap

import numpy as np
import pytest

from tests.conftest import boundary_keys, make_random_rib, random_keys
from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.lookup import kernels, registry
from repro.lookup.kernels import BoundKernel, LookupKernel
from repro.net.prefix import Prefix
from repro.net.rib import Rib

#: Every registry entry expected to have a branchless kernel.
KERNEL_ALGORITHMS = (
    "Poptrie0", "Poptrie16", "Poptrie18", "DIR-24-8", "SAIL", "D16R", "D18R",
)


def scalar_oracle(structure, keys) -> np.ndarray:
    lookup = structure.lookup
    return np.fromiter(
        (lookup(int(key)) for key in keys), dtype=np.uint32, count=len(keys)
    )


def build(name: str, rib: Rib):
    entry = registry.get(name)
    return entry.from_rib(rib, **{})


@pytest.fixture(scope="module")
def rib() -> Rib:
    return make_random_rib(2500, seed=20150817)


@pytest.fixture(scope="module")
def keys(rib) -> np.ndarray:
    return np.array(
        random_keys(6000, seed=99) + boundary_keys(rib), dtype=np.uint64
    )


class TestRegistrySurface:
    def test_kernel_capable_entries(self):
        capable = {
            name for name in registry.available()
            if registry.get(name).supports_kernel
        }
        assert capable == set(KERNEL_ALGORITHMS)

    def test_entry_kernel_is_a_lookup_kernel(self):
        for name in KERNEL_ALGORITHMS:
            entry = registry.get(name)
            assert isinstance(entry.kernel, LookupKernel), name
            assert entry.cls.supports_kernel(), name

    def test_pointer_chasing_structures_have_no_kernel(self):
        entry = registry.get("Radix")
        assert entry.kernel is None
        assert not entry.supports_kernel

    def test_available_kernels_maps_class_paths(self):
        table = kernels.available_kernels()
        assert table["repro.core.poptrie:Poptrie"] == "poptrie"
        assert table["repro.lookup.dxr:Dxr"] == "dxr"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            kernels.register_kernel(
                "repro.core.poptrie:Poptrie", kernels.PoptrieKernel()
            )


class TestScalarAgreement:
    @pytest.mark.parametrize("name", KERNEL_ALGORITHMS)
    def test_random_rib(self, name, rib, keys):
        structure = build(name, rib)
        assert structure.batch_engine().startswith("kernel:")
        np.testing.assert_array_equal(
            structure.lookup_batch(keys), scalar_oracle(structure, keys)
        )

    @pytest.mark.parametrize("name", KERNEL_ALGORITHMS)
    def test_template_agrees_when_dispatch_disabled(self, name, rib, keys):
        structure = build(name, rib)
        want = structure.lookup_batch(keys)
        with kernels.kernels_disabled():
            assert not kernels.dispatch_enabled()
            assert structure.batch_engine() == "template"
            np.testing.assert_array_equal(structure.lookup_batch(keys), want)
        assert kernels.dispatch_enabled()

    @pytest.mark.parametrize("name", KERNEL_ALGORITHMS)
    def test_default_route_only(self, name, keys):
        rib = Rib(width=32)
        rib.insert(Prefix(0, 0, 32), 9)
        structure = build(name, rib)
        np.testing.assert_array_equal(
            structure.lookup_batch(keys), np.full(len(keys), 9, np.uint32)
        )

    @pytest.mark.parametrize("name", KERNEL_ALGORITHMS)
    def test_host_route_swarm(self, name):
        # /32s force maximum trie depth (and 2nd/3rd-level chunks in the
        # multi-level baselines); a default route beneath them exercises
        # the covering fallback on every miss.
        rib = make_random_rib(600, seed=5, lengths=[32, 32, 32, 24])
        rib.insert(Prefix(0, 0, 32), 3)
        structure = build(name, rib)
        probe = np.array(boundary_keys(rib), dtype=np.uint64)
        np.testing.assert_array_equal(
            structure.lookup_batch(probe), scalar_oracle(structure, probe)
        )

    @pytest.mark.parametrize("name", ("Poptrie18", "SAIL", "D16R"))
    def test_covering_route_shard_slices(self, name, rib, keys):
        # Shard RIBs replicate covering routes into each slice — lots of
        # short prefixes overlapping long ones at the slice edges.
        from repro.cluster.shard import build_shard_map, shard_rib

        shard_map = build_shard_map(rib, 4)
        for shard in shard_map.shards:
            piece = shard_rib(rib, shard)
            structure = build(name, piece)
            np.testing.assert_array_equal(
                structure.lookup_batch(keys), scalar_oracle(structure, keys)
            )

    def test_poptrie_config_matrix(self, rib, keys):
        kernel = kernels.kernel_for_class(Poptrie)
        for config in (
            PoptrieConfig(s=0),
            PoptrieConfig(s=16),
            PoptrieConfig(s=16, use_leafvec=False),
            PoptrieConfig(k=4, s=10),
            PoptrieConfig(s=16, leaf_bits=32),
        ):
            trie = Poptrie.from_rib(rib, config=config)
            state = kernel.state_from_structure(trie)
            np.testing.assert_array_equal(
                kernel.lookup_batch(state, keys),
                scalar_oracle(trie, keys),
            )

    def test_empty_batch(self, rib):
        structure = build("Poptrie18", rib)
        result = structure.lookup_batch(np.empty(0, dtype=np.uint64))
        assert result.dtype == np.uint32 and len(result) == 0

    def test_routeless_table(self, keys):
        structure = build("Poptrie18", Rib(width=32))
        assert not structure.lookup_batch(keys).any()


class TestImageAttachment:
    """One kernel, four state sources, identical results."""

    @pytest.mark.parametrize("name", ("Poptrie18", "D16R", "SAIL",
                                      "DIR-24-8"))
    def test_bytes_mmap_shm_agree(self, name, rib, keys, tmp_path):
        from multiprocessing import shared_memory

        structure = build(name, rib)
        want = scalar_oracle(structure, keys)
        blob = structure.to_image().to_bytes()
        from repro.parallel.image import TableImage

        # bytes
        bound = kernels.attach(TableImage.open(blob))
        assert isinstance(bound, BoundKernel)
        np.testing.assert_array_equal(bound.lookup_batch(keys), want)
        assert bound.memory_bytes() == len(blob)
        # mmap
        path = tmp_path / "table.img"
        path.write_bytes(blob)
        with open(path, "rb") as stream:
            with mmap.mmap(stream.fileno(), 0, access=mmap.ACCESS_READ) as mm:
                mapped = kernels.attach(TableImage.open(mm))
                np.testing.assert_array_equal(
                    mapped.lookup_batch(keys), want
                )
                del mapped
                gc.collect()
        # SharedMemory
        shm = shared_memory.SharedMemory(create=True, size=len(blob))
        try:
            shm.buf[: len(blob)] = blob
            shared = kernels.attach(TableImage.open(shm.buf))
            np.testing.assert_array_equal(shared.lookup_batch(keys), want)
            del shared
            gc.collect()
        finally:
            shm.close()
            shm.unlink()

    def test_bound_kernel_is_structure_shaped(self, rib):
        structure = build("Poptrie18", rib)
        bound = kernels.attach(structure.to_image())
        key = int(next(iter(rib.routes()))[0].first_address())
        assert bound.lookup(key) == structure.lookup(key)
        stats = bound.stats()
        assert stats["kernel"] == "poptrie"
        assert stats["name"] == structure.name
        assert bound.width == 32

    def test_attach_rejects_unsupported_width(self):
        # Poptrie builds IPv6 tables, but the uint64-lane kernel caps at
        # 64-bit keys — attach must refuse, exactly like to_image's
        # TypeError convention for unsupported structures.
        rib = Rib(width=128)
        rib.insert(Prefix.parse("2001:db8::/32"), 4)
        image = Poptrie.from_rib(rib).to_image()
        assert kernels.kernel_for(image) is None
        with pytest.raises(TypeError):
            kernels.attach(image)

    def test_kernel_for_ignores_foreign_kinds(self, rib):
        class FakeImage:
            kind = "journal"
            class_path = "repro.core.poptrie:Poptrie"
            width = 32

        assert kernels.kernel_for(FakeImage()) is None

    def test_corrupt_segments_rejected(self, rib):
        from repro.errors import SnapshotFormatError

        structure = build("Poptrie18", rib)
        image = structure.to_image()
        segments = {n: image.segment(n) for n in image.segment_names()}
        segments["vec"] = segments["vec"][:-1]  # truncated node array
        kernel = kernels.kernel_for(image)
        with pytest.raises(SnapshotFormatError):
            kernel.prepare(image.meta, segments, width=image.width)


class TestPoolIntegration:
    def test_workers_serve_from_kernels(self, rib, keys):
        from repro import obs
        from repro.parallel import PoolConfig, WorkerPool

        structure = build("Poptrie18", rib)
        want = structure.lookup_batch(keys)
        obs.disable()
        registry_ = obs.enable()
        try:
            with WorkerPool(
                structure, PoolConfig(workers=2, min_shard=64)
            ) as pool:
                engines = pool.stats()["engines"]
                assert set(engines.values()) == {"kernel:poptrie"}
                np.testing.assert_array_equal(pool.lookup_batch(keys), want)
                pool.publish(structure)
                assert pool.stats()["engines"]["0"] == "kernel:poptrie"
                np.testing.assert_array_equal(pool.lookup_batch(keys), want)
            snapshot = registry_.snapshot()
            served = [
                key for key in snapshot
                if key.startswith("repro_pool_engine_batches_total")
            ]
            assert served and all('engine="kernel:poptrie"' in k
                                  for k in served)
        finally:
            obs.disable()

    def test_structure_fallback_without_kernel(self, rib, keys, monkeypatch):
        # An image whose class has no registered kernel must fall back
        # to the zero-copy structure attach — and say so.  Forked
        # workers inherit the parent's (monkeypatched) kernel registry.
        from multiprocessing import get_all_start_methods

        from repro.parallel import PoolConfig, WorkerPool

        if "fork" not in get_all_start_methods():
            pytest.skip("fallback injection needs fork workers")
        structure = build("Poptrie18", rib)
        want = scalar_oracle(structure, keys)
        monkeypatch.delitem(kernels._KERNELS, "repro.core.poptrie:Poptrie")
        with WorkerPool(
            structure, PoolConfig(workers=1, start_method="fork")
        ) as pool:
            assert pool.stats()["engines"]["0"] == "structure:Poptrie"
            np.testing.assert_array_equal(pool.lookup_batch(keys), want)
