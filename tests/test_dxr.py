"""Tests for the DXR baseline (D16R/D18R)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import boundary_keys, make_random_rib, random_keys

from repro.errors import StructuralLimitError
from repro.lookup.dxr import _DIRECT_FLAG, Dxr
from repro.mem.layout import AccessTrace
from repro.net.fib import NO_ROUTE
from repro.net.prefix import Prefix
from repro.net.rib import Rib


def rib_of(*routes, width=32):
    rib = Rib(width=width)
    for text, hop in routes:
        rib.insert(Prefix.parse(text), hop)
    return rib


class TestBasics:
    @pytest.mark.parametrize("s", [16, 18])
    def test_simple_lookups(self, s):
        rib = rib_of(("10.0.0.0/8", 1), ("10.1.0.0/24", 2))
        dxr = Dxr.from_rib(rib, s=s)
        assert dxr.lookup(Prefix.parse("10.1.0.5/32").value) == 2
        assert dxr.lookup(Prefix.parse("10.9.9.9/32").value) == 1
        assert dxr.lookup(Prefix.parse("9.0.0.0/32").value) == NO_ROUTE

    def test_names(self):
        rib = rib_of(("10.0.0.0/8", 1))
        assert Dxr.from_rib(rib, s=16).name == "D16R"
        assert Dxr.from_rib(rib, s=18).name == "D18R"
        assert "modified" in Dxr.from_rib(rib, s=18, modified=True).name

    def test_uniform_chunk_stored_direct(self):
        rib = rib_of(("10.0.0.0/8", 1))
        dxr = Dxr.from_rib(rib, s=16)
        assert dxr.table[0x0A01] & _DIRECT_FLAG
        assert len(dxr.starts) == 0

    def test_split_chunk_gets_ranges(self):
        rib = rib_of(("10.0.0.0/16", 1), ("10.0.128.0/17", 2))
        dxr = Dxr.from_rib(rib, s=16)
        assert not dxr.table[0x0A00] & _DIRECT_FLAG
        base, count = dxr.chunk_bounds[0x0A00]
        assert count == 2
        assert dxr.starts[base] == 0  # every range chunk starts at offset 0

    def test_range_boundaries(self):
        rib = rib_of(("10.0.0.0/16", 1), ("10.0.128.0/17", 2))
        dxr = Dxr.from_rib(rib, s=16)
        assert dxr.lookup(Prefix.parse("10.0.127.255/32").value) == 1
        assert dxr.lookup(Prefix.parse("10.0.128.0/32").value) == 2

    def test_adjacent_equal_ranges_merge(self):
        # Two /17s with the same hop make one run, so the chunk is direct.
        rib = rib_of(("10.0.0.0/17", 3), ("10.0.128.0/17", 3))
        dxr = Dxr.from_rib(rib, s=16)
        assert dxr.table[0x0A00] & _DIRECT_FLAG


class TestEquivalence:
    @pytest.mark.parametrize("s,modified", [(16, False), (18, False), (18, True)])
    def test_against_rib(self, bgp_rib, s, modified):
        dxr = Dxr.from_rib(bgp_rib, s=s, modified=modified)
        for key in boundary_keys(bgp_rib)[:4000] + random_keys(3000, seed=s):
            assert dxr.lookup(key) == bgp_rib.lookup(key)

    def test_batch_matches_scalar(self, bgp_rib):
        dxr = Dxr.from_rib(bgp_rib, s=16)
        keys = np.array(random_keys(20_000, seed=9), dtype=np.uint64)
        batch = dxr.lookup_batch(keys)
        for i in range(0, len(keys), 131):
            assert batch[i] == dxr.lookup(int(keys[i]))

    def test_traced_matches_plain(self, bgp_rib):
        dxr = Dxr.from_rib(bgp_rib, s=18)
        trace = AccessTrace()
        for key in random_keys(400, seed=10):
            trace.reset()
            assert dxr.lookup_traced(key, trace) == dxr.lookup(key)

    def test_traced_counts_probes_and_mispredicts(self):
        rib = rib_of(
            ("10.0.0.0/16", 1),
            ("10.0.64.0/18", 2),
            ("10.0.128.0/18", 3),
            ("10.0.192.0/20", 4),
        )
        dxr = Dxr.from_rib(rib, s=16)
        trace = AccessTrace()
        dxr.lookup_traced(Prefix.parse("10.0.200.0/32").value, trace)
        assert len(trace.accesses) >= 3  # table + ≥2 binary-search probes
        assert trace.mispredicts > 0

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_tables(self, seed):
        rib = make_random_rib(80, seed=seed, width=32, max_nexthop=12)
        dxr = Dxr.from_rib(rib, s=16)
        for key in boundary_keys(rib):
            assert dxr.lookup(key) == rib.lookup(key)


class TestStructuralLimits:
    def test_range_limit_enforced(self, monkeypatch):
        import repro.lookup.dxr as dxr_module

        monkeypatch.setattr(dxr_module, "MAX_RANGES", 4)
        rib = rib_of(
            ("10.0.0.0/17", 1), ("10.0.128.0/17", 2),
            ("10.1.0.0/17", 3), ("10.1.128.0/17", 4),
            ("10.2.0.0/17", 5), ("10.2.128.0/17", 6),
        )
        with pytest.raises(StructuralLimitError):
            Dxr.from_rib(rib, s=16)

    def test_modified_doubles_limit(self, monkeypatch):
        import repro.lookup.dxr as dxr_module

        monkeypatch.setattr(dxr_module, "MAX_RANGES", 4)
        monkeypatch.setattr(dxr_module, "MAX_RANGES_MODIFIED", 1 << 20)
        rib = rib_of(
            ("10.0.0.0/17", 1), ("10.0.128.0/17", 2),
            ("10.1.0.0/17", 3), ("10.1.128.0/17", 4),
            ("10.2.0.0/17", 5), ("10.2.128.0/17", 6),
        )
        dxr = Dxr.from_rib(rib, s=16, modified=True)
        assert dxr.lookup(Prefix.parse("10.0.129.0/32").value) == 2

    def test_ipv6_requires_modified(self):
        rib = make_random_rib(50, seed=3, width=128, lengths=[32, 48])
        with pytest.raises(StructuralLimitError):
            Dxr.from_rib(rib, s=16, modified=False)

    def test_ipv6_modified_works(self):
        rib = make_random_rib(100, seed=3, width=128, lengths=[32, 48, 64])
        dxr = Dxr.from_rib(rib, s=16, modified=True)
        for key in boundary_keys(rib):
            assert dxr.lookup(key) == rib.lookup(key)


class TestMemory:
    def test_table_plus_ranges(self, bgp_rib):
        dxr = Dxr.from_rib(bgp_rib, s=16)
        assert dxr.memory_bytes() == 4 * (1 << 16) + 4 * len(dxr.starts)

    def test_d18r_table_is_4x_d16r(self, bgp_rib):
        d16 = Dxr.from_rib(bgp_rib, s=16)
        d18 = Dxr.from_rib(bgp_rib, s=18)
        assert len(d18.table) == 4 * len(d16.table)
        # Splitting /16 chunks four ways re-anchors each piece at offset 0,
        # so the range count stays the same order (±boundary duplication).
        assert len(d18.starts) <= 4 * max(len(d16.starts), 1)
