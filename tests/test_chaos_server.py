"""Kill/restart chaos sweep over the journaling control plane.

A subprocess (``tests/_chaos_worker.py``) applies a long, pre-generated
route-update stream through :class:`TransactionalPoptrie` with a
write-ahead journal attached.  This test repeatedly crashes it
mid-stream — by SIGKILL at a random instant, and by
:class:`~repro.robust.faults.FaultPlan` faults armed exactly at the
journal-append, fsync, torn-write and checkpoint sites — then restarts
it.  Each restart recovers from the journal and resumes at the durable
sequence number (the stream position).  After at least five crashes the
worker runs to completion, and the recovered table must be
fingerprint-identical to an oracle that applied the same stream
in-process without ever crashing: same route set, byte-identical
serialized Poptrie, clean structural verification.

A final end-to-end check boots ``python -m repro serve --journal`` on
the chaos-surviving journal directory and confirms lookups over the
wire match the oracle.
"""

from __future__ import annotations

import asyncio
import os
import random
import subprocess
import sys
import time

import pytest

from repro.core.poptrie import Poptrie
from repro.parallel.image import structure_to_bytes
from repro.data.updates import generate_update_stream
from repro.net.prefix import Prefix
from repro.net.rib import Rib
from repro.robust.journal import Journal, encode_update, recover
from repro.robust.txn import TransactionalPoptrie
from repro.server import protocol

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_DIR = os.path.dirname(TESTS_DIR)
WORKER = os.path.join(TESTS_DIR, "_chaos_worker.py")

#: The update stream is long enough that five kill-limited or
#: fault-limited partial runs cannot drain it (each advances at most a
#: few hundred updates), so every crash is genuinely mid-stream.
STREAM_LEN = 2000
CHECKPOINT_EVERY = 50
REQUIRED_CRASHES = 5
MAX_SWEEPS = 40

#: Per-restart fault rotation.  The empty plans crash by parent SIGKILL
#: at a random instant (with ``--fsync-every 4`` so buffered, not yet
#: durable records are genuinely lost and the tail is often torn); the
#: others die deterministically at a specific durability site.
FAULT_ROTATION = [
    ["--fsync-every", "4"],
    ["--torn-journal-at", "45"],
    ["--journal-fail-at", "60"],
    ["--fsync-every", "4"],
    ["--fsync-fail-at", "35"],
    ["--checkpoint-fail-at", "1"],
]


def base_rib(n_routes: int = 260, seed: int = 1234) -> Rib:
    """A deterministic starting table; called twice for independent copies."""
    rng = random.Random(seed)
    rib = Rib()
    rib.insert(Prefix.parse("0.0.0.0/0"), 9)
    seen = {(0, 0)}
    while len(rib) < n_routes:
        length = rng.randint(8, 28)
        value = rng.getrandbits(32) & ((0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF)
        if (value, length) in seen:
            continue
        seen.add((value, length))
        rib.insert(Prefix(value, length), rng.randint(1, 63))
    return rib


def subprocess_env() -> dict:
    env = dict(os.environ)
    src = os.path.join(REPO_DIR, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return env


@pytest.fixture(scope="module")
def sweep(tmp_path_factory):
    """Run the full chaos sweep once; the tests below assert on its outcome."""
    root = tmp_path_factory.mktemp("chaos")
    jdir = str(root / "wal")
    marker = str(root / "DONE")
    updates_file = str(root / "updates.bin")

    updates = generate_update_stream(base_rib(), count=STREAM_LEN, seed=77)
    with open(updates_file, "wb") as stream:
        stream.write(b"".join(encode_update(u) for u in updates))

    # The oracle applies the identical stream in-process, crash-free.
    oracle = TransactionalPoptrie(rib=base_rib())
    report = oracle.apply_stream(updates)
    assert report.rejected == 0 and report.applied == STREAM_LEN

    # Seed the journal with the starting table as checkpoint zero.
    os.mkdir(jdir)
    with Journal(jdir) as journal:
        journal.checkpoint(base_rib())

    def spawn(extra, throttle_us):
        argv = [
            sys.executable, WORKER, jdir, updates_file,
            "--checkpoint-every", str(CHECKPOINT_EVERY),
            "--throttle-us", str(throttle_us),
            "--done-marker", marker,
            *extra,
        ]
        return subprocess.Popen(
            argv, cwd=REPO_DIR, env=subprocess_env(),
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        )

    rng = random.Random(99)
    crashes = []
    sweeps = 0
    while len(crashes) < REQUIRED_CRASHES and sweeps < MAX_SWEEPS:
        fault = FAULT_ROTATION[sweeps % len(FAULT_ROTATION)]
        sweeps += 1
        proc = spawn(fault, throttle_us=2500)
        deadline = time.monotonic() + rng.uniform(0.7, 1.2)
        while time.monotonic() < deadline and proc.poll() is None:
            time.sleep(0.02)
        if proc.poll() is None:
            proc.kill()
            proc.wait()
            crashes.append(("SIGKILL", fault))
        elif proc.returncode != 0:
            crashes.append((f"exit {proc.returncode}", fault))
        else:
            # Finished the whole stream early — should not happen while
            # the stream is this long; treated as a sweep that made
            # progress without crashing.
            pass
        proc.stderr.close()

    # Let the survivor finish the stream at full speed, fault-free.
    proc = spawn([], throttle_us=0)
    _, stderr = proc.communicate(timeout=180)
    assert proc.returncode == 0, stderr.decode()

    return {
        "jdir": jdir,
        "marker": marker,
        "updates": updates,
        "oracle": oracle,
        "crashes": crashes,
        "sweeps": sweeps,
    }


class TestChaosSweep:
    def test_enough_mid_stream_crashes(self, sweep):
        assert len(sweep["crashes"]) >= REQUIRED_CRASHES, sweep["crashes"]
        # The rotation must actually have exercised both crash flavours:
        # parent SIGKILLs and injected durability faults.
        kinds = {kind for kind, _ in sweep["crashes"]}
        assert any(kind == "SIGKILL" for kind in kinds) or any(
            kind.startswith("exit") for kind in kinds
        )

    def test_stream_fully_journaled_exactly_once(self, sweep):
        with open(sweep["marker"]) as stream:
            final_seqno = int(stream.read().strip())
        assert final_seqno == len(sweep["updates"])
        result = recover(sweep["jdir"])
        assert result.last_seqno == len(sweep["updates"])

    def test_recovered_fingerprint_matches_oracle(self, sweep):
        # recover() verifies the replayed structure against its RIB
        # (verify=True default) — a dirty table raises before we compare.
        result = recover(sweep["jdir"])
        oracle = sweep["oracle"]

        def route_set(rib):
            return {(p.value, p.length, p.width, hop) for p, hop in rib.routes()}

        assert route_set(result.rib) == route_set(oracle.rib)
        # Byte-identical serialized form of fresh compiles of both RIBs:
        # the strongest equality the format offers.
        assert structure_to_bytes(Poptrie.from_rib(result.rib)) == structure_to_bytes(
            Poptrie.from_rib(oracle.rib)
        )

    def test_replay_is_idempotent_after_chaos(self, sweep):
        first = recover(sweep["jdir"])
        second = recover(sweep["jdir"])
        assert structure_to_bytes(Poptrie.from_rib(first.rib)) == structure_to_bytes(
            Poptrie.from_rib(second.rib)
        )


class TestServeFromChaosJournal:
    def test_serve_boots_and_answers_from_recovered_state(self, sweep):
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--journal", sweep["jdir"],
                "--host", "127.0.0.1", "--port", "0",
            ],
            cwd=REPO_DIR, env=subprocess_env(),
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            port = None
            for _ in range(50):
                line = proc.stdout.readline()
                if not line:
                    break
                if line.startswith("serving"):
                    port = int(line.rsplit(":", 1)[1])
                    break
            assert port, proc.stderr.read()

            oracle = sweep["oracle"]
            rng = random.Random(4242)
            keys = [p.value for p, _ in oracle.rib.routes()][:48]
            keys += [rng.getrandbits(32) for _ in range(16)]
            expected = [oracle.lookup(key) for key in keys]

            async def query():
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                try:
                    writer.write(protocol.frame_bytes(
                        protocol.encode_request(protocol.OP_LOOKUP4, 1, keys)
                    ))
                    await writer.drain()
                    payload = await asyncio.wait_for(
                        protocol.read_frame(reader), timeout=30
                    )
                finally:
                    writer.close()
                return protocol.decode_response(payload)

            response = asyncio.run(query())
            assert response.status == protocol.STATUS_OK
            assert list(response.results) == expected
        finally:
            proc.kill()
            proc.wait()
            proc.stdout.close()
            proc.stderr.close()
