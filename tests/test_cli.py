"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.parallel import image
from repro.data import tableio
from repro.net.prefix import Prefix
from repro.net.rib import Rib


@pytest.fixture()
def table_path(tmp_path):
    rib = Rib()
    rib.insert(Prefix.parse("10.0.0.0/8"), 1)
    rib.insert(Prefix.parse("192.0.2.0/24"), 2)
    path = str(tmp_path / "rib.txt")
    tableio.save_table(rib, path)
    return path


class TestGenerate:
    def test_custom_table(self, tmp_path, capsys):
        out = str(tmp_path / "out.txt")
        assert main(["generate", "--routes", "300", "--nexthops", "8",
                     "-o", out]) == 0
        rib = tableio.load_table(out)
        assert len(rib) == 300
        assert "300 routes" in capsys.readouterr().out

    def test_dataset_table(self, tmp_path, capsys):
        out = str(tmp_path / "ds.txt")
        assert main(["generate", "--dataset", "RV-nwax-p1",
                     "--scale", "0.002", "-o", out]) == 0
        assert len(tableio.load_table(out)) > 500


class TestCompileAndLookup:
    def test_compile_then_lookup_snapshot(self, table_path, tmp_path, capsys):
        fib = str(tmp_path / "fib.poptrie")
        assert main(["compile", table_path, "-o", fib]) == 0
        assert main(["lookup", fib, "10.1.2.3", "192.0.2.9", "8.8.8.8"]) == 0
        out = capsys.readouterr().out
        assert "10.1.2.3 -> FIB[1]" in out
        assert "192.0.2.9 -> FIB[2]" in out
        assert "8.8.8.8 -> no route" in out

    def test_compile_options(self, table_path, tmp_path):
        fib = str(tmp_path / "fib2.poptrie")
        assert main(["compile", table_path, "-o", fib, "--s", "16",
                     "--no-leafvec", "--aggregate"]) == 0
        trie = image.load_structure(fib)
        assert trie.s == 16 and not trie.config.use_leafvec

    def test_lookup_text_table_directly(self, table_path, capsys):
        assert main(["lookup", table_path, "10.1.2.3"]) == 0
        assert "FIB[1]" in capsys.readouterr().out

    def test_lookup_bad_address(self, table_path, capsys):
        assert main(["lookup", table_path, "not-an-ip"]) == 2

    def test_lookup_wrong_family(self, table_path, capsys):
        assert main(["lookup", table_path, "2001:db8::1"]) == 2


class TestValuePlaneCli:
    @pytest.fixture()
    def geo_table_path(self, tmp_path):
        from repro.net.values import ValueTable

        values = ValueTable("cc")
        rib = Rib(values=values)
        rib.insert(Prefix.parse("10.0.0.0/8"), values.intern("CN"))
        rib.insert(Prefix.parse("10.1.0.0/16"), values.intern("JP"))
        path = str(tmp_path / "geo.txt")
        tableio.save_table(rib, path)
        return path

    def test_lookup_resolves_values(self, geo_table_path, capsys):
        assert main(["lookup", geo_table_path, "10.1.2.3", "10.9.9.9",
                     "11.0.0.1"]) == 0
        out = capsys.readouterr().out
        assert "10.1.2.3 -> JP (id 2)" in out
        assert "10.9.9.9 -> CN (id 1)" in out
        assert "11.0.0.1 -> no route" in out

    def test_lookup_geoip_demo(self, capsys):
        assert main(["lookup", "--geoip", "--geoip-routes", "500",
                     "--seed", "3", "8.8.8.8"]) == 0
        captured = capsys.readouterr()
        assert "geoip demo" in captured.err
        assert "8.8.8.8 ->" in captured.out

    def test_lookup_without_table_or_geoip_errors(self, capsys):
        assert main(["lookup", "8.8.8.8"]) == 2
        assert "table" in capsys.readouterr().err.lower()

    def test_bench_geoip_writes_artifact(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_geoip.json")
        assert main(["bench", "--geoip", "--geoip-routes", "800",
                     "--queries", "2000", "--seed", "5",
                     "--json", out]) == 0
        assert "GeoIP value plane" in capsys.readouterr().out
        import json

        payload = json.loads(open(out).read())
        assert payload["scenario"] == "geoip"
        assert payload["oracle_agreement"] is True
        raw, simple = payload["builds"][0], payload["builds"][1]
        assert simple["inodes"] < raw["inodes"]

    def test_bench_geoip_rejects_other_modes(self, capsys):
        assert main(["bench", "--geoip", "--kernel"]) == 2
        assert main(["bench", "--geoip", "--workers", "2"]) == 2

    def test_bench_without_table_errors(self, capsys):
        assert main(["bench"]) == 2


class TestInfoAndBench:
    def test_info(self, table_path, capsys):
        assert main(["info", table_path]) == 0
        out = capsys.readouterr().out
        assert "Poptrie18" in out and "SAIL" in out

    def test_bench(self, table_path, capsys):
        assert main(["bench", table_path, "--queries", "2000",
                     "--repeats", "1"]) == 0
        assert "Mlps" in capsys.readouterr().out


class TestVerify:
    def test_verify_text_table(self, table_path, capsys):
        assert main(["verify", table_path]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_healthy_snapshot(self, table_path, tmp_path, capsys):
        fib = str(tmp_path / "fib.poptrie")
        assert main(["compile", table_path, "-o", fib]) == 0
        capsys.readouterr()
        assert main(["verify", fib]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_snapshot_against_table(self, table_path, tmp_path, capsys):
        fib = str(tmp_path / "fib.poptrie")
        main(["compile", table_path, "-o", fib])
        capsys.readouterr()
        assert main(["verify", fib, "--against", table_path,
                     "--samples", "200"]) == 0
        assert "cross-checked" in capsys.readouterr().out

    def test_verify_truncated_snapshot_fails_with_diagnostic(
        self, table_path, tmp_path, capsys
    ):
        fib = str(tmp_path / "fib.poptrie")
        main(["compile", table_path, "-o", fib])
        with open(fib, "rb") as stream:
            blob = stream.read()
        with open(fib, "wb") as stream:
            stream.write(blob[:20])  # not even a full header survives
        capsys.readouterr()
        assert main(["verify", fib]) == 1
        err = capsys.readouterr().err
        assert "error" in err and "truncat" in err

    def test_verify_bitflipped_snapshot_fails(self, table_path, tmp_path,
                                              capsys):
        fib = str(tmp_path / "fib.poptrie")
        main(["compile", table_path, "-o", fib])
        blob = bytearray(open(fib, "rb").read())
        blob[len(blob) // 2] ^= 0x40
        with open(fib, "wb") as stream:
            stream.write(bytes(blob))
        capsys.readouterr()
        assert main(["verify", fib]) == 1
        assert "CRC" in capsys.readouterr().err

    def test_verify_table_semantic_mismatch(self, table_path, tmp_path,
                                            capsys):
        """A snapshot verified against a *different* table exits non-zero
        with the diverging lookup in the diagnostic."""
        fib = str(tmp_path / "fib.poptrie")
        main(["compile", table_path, "-o", fib])
        other = str(tmp_path / "other.txt")
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 42)
        tableio.save_table(rib, other)
        capsys.readouterr()
        assert main(["verify", fib, "--against", other]) == 1
        assert "RIB says" in capsys.readouterr().err


class TestErrors:
    def test_missing_file(self, capsys):
        assert main(["lookup", "/nonexistent/table.txt", "10.0.0.1"]) == 1
        assert "error" in capsys.readouterr().err

    def test_bad_table_format(self, tmp_path, capsys):
        path = str(tmp_path / "junk.txt")
        with open(path, "w") as stream:
            stream.write("this is not a table\n")
        assert main(["lookup", path, "10.0.0.1"]) == 1


class TestUnifiedTableSpelling:
    """Every table-reading subcommand takes --table; --snapshot is a
    deprecated hidden alias; the positional keeps working."""

    def test_table_flag_equivalent_to_positional(self, table_path, capsys):
        assert main(["lookup", "--table", table_path, "10.1.2.3"]) == 0
        assert "FIB[1]" in capsys.readouterr().out
        assert main(["info", "--table", table_path]) == 0
        assert main(["verify", "--table", table_path]) == 0
        assert main(["bench", "--table", table_path, "--queries", "1000",
                     "--repeats", "1", "--algorithm", "Poptrie18"]) == 0

    def test_snapshot_alias_warns_on_stderr(self, table_path, tmp_path,
                                            capsys):
        fib = str(tmp_path / "fib.poptrie")
        assert main(["compile", table_path, "-o", fib]) == 0
        capsys.readouterr()
        assert main(["verify", "--snapshot", fib]) == 0
        captured = capsys.readouterr()
        assert "OK" in captured.out
        assert "deprecated" in captured.err and "--table" in captured.err

    def test_positional_and_flag_conflict(self, table_path, capsys):
        assert main(["lookup", table_path, "10.1.2.3",
                     "--table", "/elsewhere/other.txt"]) == 2
        assert "one table" in capsys.readouterr().err

    def test_missing_table_is_a_usage_error(self, capsys):
        # The lone positional satisfies `addresses`; no table remains.
        assert main(["lookup", "10.1.2.3"]) == 2
        assert "table is required" in capsys.readouterr().err
        assert main(["info"]) == 2
        assert "table is required" in capsys.readouterr().err

    def test_bench_algorithm_filter(self, table_path, capsys):
        assert main(["bench", table_path, "--queries", "1000",
                     "--repeats", "1", "--algorithm", "Poptrie18",
                     "--algorithm", "SAIL"]) == 0
        out = capsys.readouterr().out
        assert "Poptrie18" in out and "SAIL" in out
        assert "DIR-24-8" not in out

    def test_bench_unknown_algorithm(self, table_path, capsys):
        assert main(["bench", table_path, "--algorithm", "NoSuch"]) == 2
        assert "unknown algorithm" in capsys.readouterr().err


class TestServeLoadgen:
    def test_serve_then_loadgen_roundtrip(self, table_path, tmp_path, capsys):
        """Full cross-process style round trip, in one process: serve in a
        thread, drive it with the loadgen subcommand, assert clean exit."""
        import json
        import socket
        import subprocess
        import sys

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--table", table_path,
             "--port", str(port)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            assert "serving" in server.stdout.readline()
            report_path = str(tmp_path / "report.json")
            code = main(["loadgen", "--port", str(port),
                         "--duration", "0.5", "--rate", "400",
                         "--connections", "2", "--batch", "4",
                         "--swap-mid-run", "--json", report_path])
            assert code == 0
            out = capsys.readouterr().out
            assert "0 errors" in out and "0 mismatched" in out
            with open(report_path) as stream:
                report = json.load(stream)
            assert report["errors"] == 0
            assert report["completed"] == report["sent"] > 0
            assert report["swaps_observed"] >= 1  # OP_RELOAD hot swap landed
        finally:
            server.terminate()
            try:
                server.wait(timeout=10)
            except subprocess.TimeoutExpired:
                server.kill()

    def test_loadgen_connection_refused(self, capsys):
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        assert main(["loadgen", "--port", str(port),
                     "--duration", "0.1"]) == 1
        assert "error" in capsys.readouterr().err


class TestGenerateIPv6:
    def test_ipv6_table(self, tmp_path, capsys):
        out = str(tmp_path / "v6.txt")
        assert main(["generate", "--routes", "150", "--nexthops", "8",
                     "--ipv6", "-o", out]) == 0
        rib = tableio.load_table(out)
        assert rib.width == 128 and len(rib) == 150

    def test_ipv6_lookup_via_text_table(self, tmp_path, capsys):
        out = str(tmp_path / "v6.txt")
        main(["generate", "--routes", "100", "--nexthops", "4", "--ipv6",
              "-o", out])
        rib = tableio.load_table(out)
        prefix, hop = next(iter(rib.routes()))
        from repro.net.ip import format_address

        text = format_address(prefix.value, 128)
        assert main(["lookup", out, text]) == 0
        assert f"FIB[{hop}]" in capsys.readouterr().out
