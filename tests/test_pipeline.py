"""Tests for the batched forwarding pipeline."""

import numpy as np
import pytest

from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.net.values import Fib, NextHop
from repro.net.prefix import Prefix
from repro.net.rib import Rib
from repro.router.pipeline import (
    CostModel,
    ForwardingPipeline,
    RingBuffer,
    batch_size_sweep,
)


@pytest.fixture()
def plumbing():
    fib = Fib()
    a = fib.intern(NextHop("198.51.100.1", port=1))
    b = fib.intern(NextHop("198.51.100.2", port=2))
    rib = Rib()
    rib.insert(Prefix.parse("10.0.0.0/8"), a)
    rib.insert(Prefix.parse("192.0.2.0/24"), b)
    return Poptrie.from_rib(rib, PoptrieConfig(s=16)), fib


def destinations(count):
    base = Prefix.parse("10.0.0.0/8").value
    return [base + i for i in range(count)]


class TestRingBuffer:
    def test_fifo_order(self):
        ring = RingBuffer(8)
        for i in range(4):
            ring.push(float(i), i * 10)
        assert ring.pop_batch(2) == [(0.0, 0), (1.0, 10)]
        assert ring.pop_batch(10) == [(2.0, 20), (3.0, 30)]

    def test_tail_drop_when_full(self):
        ring = RingBuffer(2)
        assert ring.push(0, 1) and ring.push(0, 2)
        assert not ring.push(0, 3)
        assert ring.dropped == 1 and ring.enqueued == 2

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)


class TestPipeline:
    def test_all_packets_forwarded(self, plumbing):
        structure, fib = plumbing
        pipeline = ForwardingPipeline(structure, fib, batch_size=16)
        report = pipeline.run(destinations(200))
        assert report.packets == 200
        assert pipeline.port_packets[1] == 200
        assert report.dropped == 0

    def test_no_route_drops_counted(self, plumbing):
        structure, fib = plumbing
        pipeline = ForwardingPipeline(structure, fib, batch_size=16)
        unroutable = [Prefix.parse("203.0.113.5/32").value] * 50
        report = pipeline.run(unroutable)
        assert pipeline.no_route_drops == 50
        assert report.packets == 50  # still measured through the stage

    def test_empty_input(self, plumbing):
        structure, fib = plumbing
        report = ForwardingPipeline(structure, fib).run([])
        assert report.packets == 0

    def test_deterministic(self, plumbing):
        structure, fib = plumbing
        a = ForwardingPipeline(structure, fib, batch_size=8).run(destinations(100))
        b = ForwardingPipeline(structure, fib, batch_size=8).run(destinations(100))
        assert a == b

    def test_latency_percentiles_ordered(self, plumbing):
        structure, fib = plumbing
        report = ForwardingPipeline(structure, fib, batch_size=32).run(
            destinations(500)
        )
        assert report.p50_latency <= report.p99_latency <= report.max_latency

    def test_rejects_bad_batch_size(self, plumbing):
        structure, fib = plumbing
        with pytest.raises(ValueError):
            ForwardingPipeline(structure, fib, batch_size=0)


class TestBatchTradeoff:
    """The §2 trade-off has two regimes:

    - *Underload* (arrivals slower than any batch size's service rate):
      bigger batches wait to fill, so worst-case latency and jitter grow
      monotonically with batch size — the paper's GPU-batching critique.
    - *Near saturation*: tiny batches cannot amortise the per-batch
      overhead, queues build up, and latency explodes — why batching
      exists at all.
    """

    def test_underload_latency_grows_with_batch(self, plumbing):
        structure, fib = plumbing
        sweep = dict(
            batch_size_sweep(
                structure,
                fib,
                destinations(2000),
                batch_sizes=(1, 32, 512),
                arrival_interval=3.0,  # 0.33 Mpps: every size keeps up
                cost=CostModel(batch_overhead=2.0, per_packet=0.01),
            )
        )
        assert (
            sweep[1].max_latency
            < sweep[32].max_latency
            < sweep[512].max_latency
        )
        assert sweep[1].jitter <= sweep[512].jitter

    def test_saturation_rewards_batching(self, plumbing):
        structure, fib = plumbing
        sweep = dict(
            batch_size_sweep(
                structure,
                fib,
                destinations(3000),
                batch_sizes=(1, 128),
                arrival_interval=0.05,  # 20 Mpps: B=1 cannot keep up
                cost=CostModel(batch_overhead=2.0, per_packet=0.01),
            )
        )
        assert sweep[128].throughput_mpps > 5 * sweep[1].throughput_mpps
        assert sweep[128].mean_latency < sweep[1].mean_latency
