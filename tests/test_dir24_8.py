"""Tests for the DIR-24-8-BASIC baseline."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import boundary_keys, make_random_rib, random_keys

from repro.errors import StructuralLimitError
from repro.lookup.dir24_8 import _CHUNK_FLAG, Dir24_8
from repro.mem.layout import AccessTrace
from repro.net.fib import NO_ROUTE
from repro.net.prefix import Prefix
from repro.net.rib import Rib


def rib_of(*routes):
    rib = Rib()
    for text, hop in routes:
        rib.insert(Prefix.parse(text), hop)
    return rib


class TestBasics:
    def test_short_prefix_single_access(self):
        d = Dir24_8.from_rib(rib_of(("10.0.0.0/8", 1)))
        assert d.lookup(Prefix.parse("10.1.2.3/32").value) == 1
        assert len(d.tbl_long) == 0

    def test_long_prefix_uses_second_level(self):
        d = Dir24_8.from_rib(rib_of(("10.0.0.0/24", 1), ("10.0.0.128/25", 2)))
        assert d.lookup(Prefix.parse("10.0.0.200/32").value) == 2
        assert d.lookup(Prefix.parse("10.0.0.100/32").value) == 1
        assert len(d.tbl_long) == 256

    def test_miss(self):
        d = Dir24_8.from_rib(rib_of(("10.0.0.0/8", 1)))
        assert d.lookup(Prefix.parse("11.0.0.0/32").value) == NO_ROUTE

    def test_rejects_ipv6(self):
        rib = Rib(width=128)
        rib.insert(Prefix.parse("2001:db8::/32"), 1)
        with pytest.raises(ValueError):
            Dir24_8.from_rib(rib)

    def test_nexthop_width_limit(self):
        with pytest.raises(StructuralLimitError):
            Dir24_8.from_rib(rib_of(("10.0.0.0/8", 40_000)))


class TestEquivalence:
    def test_against_rib(self, bgp_rib):
        d = Dir24_8.from_rib(bgp_rib)
        for key in boundary_keys(bgp_rib)[:4000] + random_keys(3000, seed=12):
            assert d.lookup(key) == bgp_rib.lookup(key)

    def test_batch_matches_scalar(self, bgp_rib):
        d = Dir24_8.from_rib(bgp_rib)
        keys = np.array(random_keys(20_000, seed=13), dtype=np.uint64)
        batch = d.lookup_batch(keys)
        for i in range(0, len(keys), 127):
            assert batch[i] == d.lookup(int(keys[i]))

    def test_traced_matches_plain(self, bgp_rib):
        d = Dir24_8.from_rib(bgp_rib)
        trace = AccessTrace()
        for key in random_keys(300, seed=14):
            trace.reset()
            assert d.lookup_traced(key, trace) == d.lookup(key)

    def test_trace_is_one_or_two_accesses(self, bgp_rib):
        d = Dir24_8.from_rib(bgp_rib)
        trace = AccessTrace()
        for key in random_keys(300, seed=15):
            trace.reset()
            d.lookup_traced(key, trace)
            assert len(trace.accesses) in (1, 2)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_tables(self, seed):
        rib = make_random_rib(60, seed=seed, width=32, max_nexthop=12)
        d = Dir24_8.from_rib(rib)
        for key in boundary_keys(rib):
            assert d.lookup(key) == rib.lookup(key)


class TestMemory:
    def test_dominated_by_first_level(self, bgp_rib):
        d = Dir24_8.from_rib(bgp_rib)
        assert d.memory_bytes() >= 2 << 24  # the famous 32 MiB floor
