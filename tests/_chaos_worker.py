"""Subprocess body for the chaos test: apply a journaled update stream.

Run as ``python tests/_chaos_worker.py JOURNAL_DIR UPDATES_FILE [options]``
with ``repro`` importable.  The worker

1. recovers the durable state from ``JOURNAL_DIR`` (newest checkpoint +
   replayed tail),
2. resumes applying the update stream *from that point* — every valid
   update is journaled exactly once in order, so the durable sequence
   number doubles as the stream position,
3. journals every update (journal-then-publish), checkpoints every
   ``--checkpoint-every`` applied updates, and
4. writes ``--done-marker`` (the final sequence number) after the last
   update is durable.

The parent test SIGKILLs this process at random instants and restarts
it; ``--*-fail-at`` options additionally arm a
:class:`~repro.robust.faults.FaultPlan` so some "crashes" happen exactly
at a journal append, fsync, torn write or checkpoint.  An injected fault
exits via ``os._exit`` — no cleanup, like the SIGKILL it stands in for.

``UPDATES_FILE`` is a flat concatenation of fixed-size journal record
payloads (:func:`repro.robust.journal.encode_update`).
"""

from __future__ import annotations

import argparse
import os
import sys
import time


def parse_args(argv):
    parser = argparse.ArgumentParser()
    parser.add_argument("journal")
    parser.add_argument("updates")
    parser.add_argument("--checkpoint-every", type=int, default=200)
    parser.add_argument("--fsync-every", type=int, default=1)
    parser.add_argument("--throttle-us", type=int, default=0,
                        help="sleep per update, to give the parent time "
                             "to kill the process mid-stream")
    parser.add_argument("--done-marker", default=None)
    parser.add_argument("--journal-fail-at", type=int, default=None)
    parser.add_argument("--fsync-fail-at", type=int, default=None)
    parser.add_argument("--checkpoint-fail-at", type=int, default=None)
    parser.add_argument("--torn-journal-at", type=int, default=None)
    return parser.parse_args(argv)


def load_updates(path):
    from repro.robust.journal import decode_update

    with open(path, "rb") as stream:
        blob = stream.read()
    size = 24  # fixed payload size of the journal record format
    assert len(blob) % size == 0, "updates file is not whole records"
    return [
        decode_update(blob[offset:offset + size])
        for offset in range(0, len(blob), size)
    ]


def main(argv=None):
    args = parse_args(argv if argv is not None else sys.argv[1:])

    from repro.errors import InjectedFault
    from repro.robust.faults import FaultPlan
    from repro.robust.journal import Journal, recover

    updates = load_updates(args.updates)
    result = recover(args.journal, verify=False)
    start = result.last_seqno  # stream position == durable seqno
    txn = result.trie
    txn.journal = Journal(args.journal, fsync_every=args.fsync_every)

    plan = FaultPlan(
        journal_fail_at=args.journal_fail_at,
        fsync_fail_at=args.fsync_fail_at,
        checkpoint_fail_at=args.checkpoint_fail_at,
        torn_journal_at=args.torn_journal_at,
    )
    throttle = args.throttle_us / 1e6
    applied = 0
    try:
        with plan:
            for update in updates[start:]:
                if update.kind == "A":
                    txn.announce(update.prefix, update.nexthop)
                else:
                    txn.withdraw(update.prefix)
                applied += 1
                if applied % args.checkpoint_every == 0:
                    txn.checkpoint()
                if throttle:
                    time.sleep(throttle)
    except InjectedFault:
        # The injected crash: die on the spot, no cleanup, no flush —
        # exactly what the SIGKILL variant of this test does.
        os._exit(7)
    txn.journal.close()
    if args.done_marker:
        with open(args.done_marker, "w") as stream:
            stream.write(f"{txn.journal.last_seqno}\n")
    print(f"done at seqno {txn.journal.last_seqno}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
