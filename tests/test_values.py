"""Unit tests for the generalized value plane (repro.net.values).

Covers the ValueTable contract (interning, the id-0 sentinel, capacity),
the per-kind codecs (segment and text round trips, validation), and the
structure-side plumbing: attach_values / lookup_value, value segments in
images, and the registry's ``values=`` build option.
"""

import numpy as np
import pytest

from repro.errors import SnapshotFormatError
from repro.net.prefix import Prefix
from repro.net.rib import Rib
from repro.net.values import (
    NO_ROUTE,
    NO_VALUE,
    VALUE_KINDS,
    Fib,
    NextHop,
    ValueTable,
    cc_to_u16,
    u16_to_cc,
    value_kind,
)


class TestSentinel:
    def test_no_value_is_no_route(self):
        assert NO_VALUE == NO_ROUTE == 0

    def test_getitem_rejects_sentinel(self):
        with pytest.raises(KeyError):
            ValueTable("u16")[NO_VALUE]

    def test_get_returns_none_for_sentinel(self):
        assert ValueTable("u16").get(NO_VALUE) is None


class TestValueTable:
    def test_intern_assigns_dense_one_based_ids(self):
        table = ValueTable("u32")
        assert (table.intern(7), table.intern(8), table.intern(7)) == (1, 2, 1)
        assert len(table) == 2

    def test_id_of(self):
        table = ValueTable("u16")
        index = table.intern(42)
        assert table.id_of(42) == index
        assert table.id_of(43) is None

    def test_iteration_is_id_order(self):
        table = ValueTable("cc")
        for code in ("JP", "US", "DE"):
            table.intern(code)
        assert list(table) == ["JP", "US", "DE"]

    def test_capacity_limit(self):
        table = ValueTable("u16", max_entries=1)
        table.intern(1)
        with pytest.raises(OverflowError):
            table.intern(2)

    def test_equality_is_kind_and_contents(self):
        a, b = ValueTable("u16"), ValueTable("u16")
        a.intern(5), b.intern(5)
        assert a == b
        b.intern(6)
        assert a != b
        c = ValueTable("u32")
        c.intern(5)
        assert a != c

    def test_tables_are_unhashable(self):
        with pytest.raises(TypeError):
            hash(ValueTable("u16"))

    def test_describe(self):
        table = ValueTable("cc")
        table.intern("CN")
        assert table.describe() == {"kind": "cc", "count": 1}

    def test_unknown_kind_lists_known(self):
        with pytest.raises(ValueError, match="cc.*nexthop.*u16.*u32"):
            ValueTable("geohash")


class TestKindValidation:
    def test_u16_range(self):
        table = ValueTable("u16")
        table.intern(0xFFFF)
        with pytest.raises(ValueError):
            table.intern(0x10000)
        with pytest.raises(ValueError):
            table.intern(-1)

    def test_int_kinds_reject_bool_and_str(self):
        table = ValueTable("u32")
        with pytest.raises(TypeError):
            table.intern(True)
        with pytest.raises(TypeError):
            table.intern("7")

    def test_cc_normalizes_case(self):
        table = ValueTable("cc")
        assert table.intern("jp") == table.intern("JP")
        assert table[1] == "JP"

    def test_cc_rejects_non_codes(self):
        table = ValueTable("cc")
        for bad in ("J", "JPN", "J1", "日本"):
            with pytest.raises(ValueError):
                table.intern(bad)
        with pytest.raises(TypeError):
            table.intern(0x4A50)

    def test_nexthop_kind_rejects_plain_tuples(self):
        with pytest.raises(TypeError):
            Fib().intern(("10.0.0.1", 0))


class TestCountryCodec:
    def test_u16_encoding_is_swoiow(self):
        assert cc_to_u16("CN") == (ord("C") << 8) | ord("N")

    def test_round_trip_all_pairs(self):
        assert u16_to_cc(cc_to_u16("zz")) == "ZZ"

    def test_u16_to_cc_rejects_non_letters(self):
        with pytest.raises(ValueError):
            u16_to_cc(0x1234)


class TestSegmentRoundTrip:
    """to_segments / from_segments for every registered kind."""

    def _populate(self, kind):
        table = ValueTable(kind) if kind != "nexthop" else Fib()
        samples = {
            "u16": [7, 65_535, 0],
            "u32": [1, 2**32 - 1, 12_345],
            "cc": ["JP", "US", "CN"],
            "nexthop": [NextHop("10.0.0.1"), NextHop("192.0.2.9", 7),
                        NextHop("2001:db8::1", 3)],
        }[kind]
        for sample in samples:
            table.intern(sample)
        return table

    @pytest.mark.parametrize("kind", sorted(VALUE_KINDS))
    def test_round_trip(self, kind):
        table = self._populate(kind)
        meta, segments = table.to_segments()
        assert meta == {"kind": kind, "count": len(table)}
        for segment in segments.values():
            assert segment.dtype.kind == "u", "image segments are unsigned"
        rebuilt = ValueTable.from_segments(meta, segments)
        assert rebuilt == table

    def test_nexthop_rebuilds_as_fib(self):
        meta, segments = self._populate("nexthop").to_segments()
        assert isinstance(ValueTable.from_segments(meta, segments), Fib)

    def test_empty_table_round_trips(self):
        meta, segments = ValueTable("u16").to_segments()
        assert len(ValueTable.from_segments(meta, segments)) == 0

    def test_count_mismatch_raises(self):
        meta, segments = self._populate("u16").to_segments()
        meta = {**meta, "count": 99}
        with pytest.raises(SnapshotFormatError):
            ValueTable.from_segments(meta, segments)

    def test_unknown_kind_raises(self):
        with pytest.raises(SnapshotFormatError):
            ValueTable.from_segments(
                {"kind": "nope", "count": 0}, {"data": np.array([], np.uint16)}
            )

    def test_duplicate_entries_raise(self):
        segments = {"data": np.array([5, 5], dtype=np.uint16)}
        with pytest.raises(SnapshotFormatError):
            ValueTable.from_segments({"kind": "u16", "count": 2}, segments)


class TestTextCodecs:
    @pytest.mark.parametrize("kind,value", [
        ("u16", 65_535),
        ("u32", 2**32 - 1),
        ("cc", "JP"),
        ("nexthop", NextHop("10.0.0.1", 7)),
        ("nexthop", NextHop("2001:db8::1", 0)),
    ])
    def test_format_parse_round_trip(self, kind, value):
        codec = value_kind(kind)
        token = codec.format(value)
        assert " " not in token, "tokens must be single words"
        assert codec.parse(token) == value

    def test_nexthop_parse_rejects_portless_text(self):
        with pytest.raises(ValueError):
            value_kind("nexthop").parse("%7")


class TestStructureValuePlane:
    """attach_values / lookup_value / image travel on a real structure."""

    def _valued_structure(self):
        from repro.core.poptrie import Poptrie

        values = ValueTable("cc")
        rib = Rib(values=values)
        rib.insert(Prefix.parse("10.0.0.0/8"), values.intern("CN"))
        rib.insert(Prefix.parse("10.1.0.0/16"), values.intern("JP"))
        structure = Poptrie.from_rib(rib)
        structure.attach_values(values)
        return structure, values

    def test_lookup_value_resolves_payloads(self):
        structure, _ = self._valued_structure()
        assert structure.lookup_value(
            Prefix.parse("10.1.2.3/32").value) == "JP"
        assert structure.lookup_value(
            Prefix.parse("10.9.9.9/32").value) == "CN"
        assert structure.lookup_value(
            Prefix.parse("11.0.0.1/32").value) is None

    def test_lookup_value_identity_without_table(self):
        from repro.core.poptrie import Poptrie

        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 42)
        structure = Poptrie.from_rib(rib)
        assert structure.values is None
        assert structure.lookup_value(Prefix.parse("10.0.0.1/32").value) == 42

    def test_attach_values_type_checked(self):
        structure, _ = self._valued_structure()
        with pytest.raises(TypeError):
            structure.attach_values({"not": "a table"})
        structure.attach_values(None)
        assert structure.values is None

    def test_stats_reports_value_plane(self):
        structure, _ = self._valued_structure()
        assert structure.stats()["values"] == {"kind": "cc", "count": 2}

    def test_image_round_trip_carries_values(self):
        from repro.core.poptrie import Poptrie

        structure, values = self._valued_structure()
        image = structure.to_image()
        assert any(
            name.startswith("values/") for name in image.segment_names()
        )
        rebuilt = Poptrie.from_image(image)
        assert rebuilt.values == values
        key = Prefix.parse("10.1.2.3/32").value
        assert rebuilt.lookup_value(key) == "JP"

    def test_image_fingerprint_deterministic(self):
        a, _ = self._valued_structure()
        b, _ = self._valued_structure()
        assert a.to_image().fingerprint() == b.to_image().fingerprint()

    def test_kernel_agrees_on_valued_structure(self):
        from repro.lookup import kernels

        structure, _ = self._valued_structure()
        image = structure.to_image()
        if kernels.kernel_for(image) is None:
            pytest.skip("no kernel for Poptrie in this build")
        bound = kernels.attach(image)
        keys = np.array(
            [Prefix.parse(t).value for t in
             ("10.1.2.3/32", "10.9.9.9/32", "11.0.0.1/32")],
            dtype=np.uint64,
        )
        expected = [structure.lookup(int(k)) for k in keys]
        assert bound.lookup_batch(keys).tolist() == expected


class TestRegistryValuesOption:
    def test_rib_values_flow_through_builds(self):
        from repro.lookup.registry import get

        values = ValueTable("cc")
        rib = Rib(values=values)
        rib.insert(Prefix.parse("10.0.0.0/8"), values.intern("CN"))
        structure = get("Poptrie18").from_rib(rib)
        assert structure.values is values

    def test_explicit_override_wins(self):
        from repro.lookup.registry import get

        values = ValueTable("cc")
        rib = Rib(values=values)
        rib.insert(Prefix.parse("10.0.0.0/8"), values.intern("CN"))
        other = ValueTable("cc")
        other.intern("CN")
        structure = get("Poptrie18").from_rib(rib, values=other)
        assert structure.values is other
        assert get("Poptrie18").from_rib(rib, values=None).values is None

    def test_values_option_type_checked(self):
        from repro.lookup.registry import get

        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/8"), 1)
        with pytest.raises(TypeError):
            get("Poptrie18").from_rib(rib, values=["CN"])

    @pytest.mark.parametrize("name", ["Radix", "SAIL", "DIR-24-8", "Lulea"])
    def test_every_entry_accepts_the_option(self, name):
        from repro.lookup.registry import get

        values = ValueTable("u16")
        rib = Rib(values=values)
        rib.insert(Prefix.parse("10.0.0.0/8"), values.intern(9))
        structure = get(name).from_rib(rib)
        assert structure.values is values
        key = Prefix.parse("10.0.0.1/32").value
        assert structure.lookup_value(key) == 9
