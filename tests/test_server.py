"""End-to-end tests for the route-lookup service (repro.server).

The flagship test serves a Poptrie over real TCP, drives it with
concurrent pipelined clients, and commits a transactional route update
mid-run, hot-swapping the result through the :class:`TableHandle` —
asserting that not one response fails, misroutes, or observes a
half-published table, and that the dispatcher actually coalesced
concurrent requests into shared ``lookup_batch`` calls.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time

import numpy as np
import pytest

import repro
from repro import obs
from repro.core.poptrie import Poptrie
from repro.errors import ProtocolError
from repro.net.prefix import Prefix
from repro.net.rib import Rib
from repro.server import (
    LoadGenConfig,
    LoadGenerator,
    LookupServer,
    ServerConfig,
    TableHandle,
    protocol,
)


def small_rib() -> Rib:
    rib = Rib()
    rib.insert(Prefix.parse("0.0.0.0/0"), 9)
    rib.insert(Prefix.parse("10.0.0.0/8"), 1)
    rib.insert(Prefix.parse("10.64.0.0/10"), 2)
    rib.insert(Prefix.parse("192.0.2.0/24"), 3)
    return rib


# ---------------------------------------------------------------------------
# protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_request_roundtrip_v4(self):
        keys = [0, 1, 0x0A010203, 0xFFFFFFFF]
        payload = protocol.encode_request(protocol.OP_LOOKUP4, 77, keys)
        request = protocol.decode_request(payload)
        assert request.opcode == protocol.OP_LOOKUP4
        assert request.request_id == 77
        assert request.keys.dtype == np.uint64
        assert request.keys.tolist() == keys

    def test_request_roundtrip_v6(self):
        keys = [0, 1 << 100, (1 << 128) - 1]
        payload = protocol.encode_request(protocol.OP_LOOKUP6, 5, keys)
        request = protocol.decode_request(payload)
        assert request.keys.dtype == object
        assert list(request.keys) == keys

    def test_control_opcodes_take_no_keys(self):
        for opcode in (protocol.OP_PING, protocol.OP_STATS,
                       protocol.OP_RELOAD):
            request = protocol.decode_request(
                protocol.encode_request(opcode, 1)
            )
            assert len(request.keys) == 0
        with pytest.raises(ProtocolError):
            protocol.encode_request(protocol.OP_PING, 1, [4])

    def test_response_roundtrip(self):
        payload = protocol.encode_response(
            12, generation=3, results=[1, 2, 3], text=""
        )
        response = protocol.decode_response(payload)
        assert response.ok
        assert response.request_id == 12
        assert response.generation == 3
        assert response.results.tolist() == [1, 2, 3]

    def test_response_text_body(self):
        payload = protocol.encode_response(
            1, protocol.STATUS_BAD_REQUEST, text="nope"
        )
        response = protocol.decode_response(payload)
        assert not response.ok
        assert response.text == "nope"

    def test_truncated_header_raises(self):
        with pytest.raises(ProtocolError):
            protocol.decode_request(b"\x00")
        with pytest.raises(ProtocolError):
            protocol.decode_response(b"\x00\x01")

    def test_unknown_opcode_and_version(self):
        with pytest.raises(ProtocolError):
            protocol.encode_request(99, 1)
        good = protocol.encode_request(protocol.OP_PING, 1)
        with pytest.raises(ProtocolError):
            protocol.decode_request(b"\x07" + good[1:])

    def test_wrong_body_size(self):
        payload = protocol.encode_request(protocol.OP_LOOKUP4, 1, [1, 2])
        with pytest.raises(ProtocolError):
            protocol.decode_request(payload[:-1])

    def test_protocol_error_is_public_and_a_value_error(self):
        assert repro.ProtocolError is ProtocolError
        assert issubclass(ProtocolError, ValueError)
        assert issubclass(ProtocolError, repro.ReproError)

    def test_family_opcode_mapping(self):
        assert protocol.family_opcode(32) == protocol.OP_LOOKUP4
        assert protocol.family_opcode(128) == protocol.OP_LOOKUP6
        assert 32 in protocol.opcode_width(protocol.OP_LOOKUP4)
        assert 128 in protocol.opcode_width(protocol.OP_LOOKUP6)


# ---------------------------------------------------------------------------
# TableHandle (RCU semantics)
# ---------------------------------------------------------------------------


class TestTableHandle:
    def test_generation_increments_per_swap(self):
        rib = small_rib()
        handle = TableHandle(Poptrie.from_rib(rib))
        assert handle.generation == 0
        assert handle.swap(Poptrie.from_rib(rib)) == 1
        assert handle.swap(Poptrie.from_rib(rib)) == 2
        assert handle.stats()["swaps"] == 2

    def test_pinned_reader_keeps_old_table(self):
        rib = small_rib()
        old = Poptrie.from_rib(rib)
        rib.insert(Prefix.parse("10.64.0.0/12"), 7)
        new = Poptrie.from_rib(rib)
        handle = TableHandle(old)
        key = Prefix.parse("10.64.9.9/32").value
        with handle.read() as version:
            handle.swap(new, wait=False)
            # The pinned version still serves the table the batch started on.
            assert version.structure is old
            assert version.structure.lookup(key) == old.lookup(key)
        assert handle.structure is new

    def test_swap_drains_behind_reader(self):
        handle = TableHandle(Poptrie.from_rib(small_rib()))
        release = threading.Event()
        pinned = threading.Event()

        def reader():
            with handle.read():
                pinned.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=reader)
        thread.start()
        assert pinned.wait(timeout=5)
        # While the reader pins generation 0, a drain-waiting swap times out.
        with pytest.raises(TimeoutError):
            handle.swap(Poptrie.from_rib(small_rib()), timeout=0.05)
        # The swap is still visible (publication is not blocked by readers).
        assert handle.generation == 1
        release.set()
        thread.join(timeout=5)
        # Once drained, further swaps complete immediately.
        assert handle.swap(Poptrie.from_rib(small_rib()), timeout=5) == 2

    def test_swap_async_drains(self):
        async def scenario():
            handle = TableHandle(Poptrie.from_rib(small_rib()))
            generation = await handle.swap_async(
                Poptrie.from_rib(small_rib()), timeout=5
            )
            assert generation == 1

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# LookupServer end-to-end
# ---------------------------------------------------------------------------


async def _client(host, port):
    reader, writer = await asyncio.open_connection(host, port)
    return reader, writer


async def _roundtrip(reader, writer, opcode, request_id, keys=()):
    protocol.write_frame(
        writer, protocol.encode_request(opcode, request_id, keys)
    )
    await writer.drain()
    payload = await protocol.read_frame(reader)
    assert payload is not None
    return protocol.decode_response(payload)


class TestLookupServer:
    def test_lookup_ping_stats_roundtrip(self):
        async def scenario():
            rib = small_rib()
            trie = Poptrie.from_rib(rib)
            server = LookupServer(TableHandle(trie))
            host, port = await server.start()
            try:
                reader, writer = await _client(host, port)
                keys = [Prefix.parse(a + "/32").value
                        for a in ("10.1.2.3", "10.65.0.1", "192.0.2.9",
                                  "8.8.8.8")]
                response = await _roundtrip(
                    reader, writer, protocol.OP_LOOKUP4, 1, keys
                )
                assert response.ok
                assert response.results.tolist() == [
                    trie.lookup(k) for k in keys
                ]
                pong = await _roundtrip(reader, writer, protocol.OP_PING, 2)
                assert pong.ok and pong.generation == 0
                stats = await _roundtrip(reader, writer, protocol.OP_STATS, 3)
                body = json.loads(stats.text)
                assert body["requests"] >= 2
                assert body["handle"]["generation"] == 0
                writer.close()
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_wrong_family_and_unsupported_reload(self):
        async def scenario():
            server = LookupServer(TableHandle(Poptrie.from_rib(small_rib())))
            host, port = await server.start()
            try:
                reader, writer = await _client(host, port)
                response = await _roundtrip(
                    reader, writer, protocol.OP_LOOKUP6, 1, [1 << 80]
                )
                assert response.status == protocol.STATUS_WRONG_FAMILY
                response = await _roundtrip(
                    reader, writer, protocol.OP_RELOAD, 2
                )
                assert response.status == protocol.STATUS_UNSUPPORTED
                writer.close()
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_oversized_request_rejected(self):
        async def scenario():
            server = LookupServer(
                TableHandle(Poptrie.from_rib(small_rib())),
                ServerConfig(max_keys_per_request=4),
            )
            host, port = await server.start()
            try:
                reader, writer = await _client(host, port)
                response = await _roundtrip(
                    reader, writer, protocol.OP_LOOKUP4, 1, list(range(8))
                )
                assert response.status == protocol.STATUS_BAD_REQUEST
                writer.close()
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_bad_frame_gets_error_then_disconnect(self):
        async def scenario():
            server = LookupServer(TableHandle(Poptrie.from_rib(small_rib())))
            host, port = await server.start()
            try:
                reader, writer = await _client(host, port)
                protocol.write_frame(writer, b"\x01\x63")  # unknown opcode 99
                await writer.drain()
                payload = await protocol.read_frame(reader)
                response = protocol.decode_response(payload)
                assert response.status == protocol.STATUS_BAD_REQUEST
                # The server drops the connection after an unparseable frame.
                assert await protocol.read_frame(reader) is None
                writer.close()
            finally:
                await server.stop()

        asyncio.run(scenario())

    def test_reload_rebuilds_and_bumps_generation(self):
        async def scenario():
            rib = small_rib()
            server = LookupServer(
                TableHandle(Poptrie.from_rib(rib)),
                rebuild=lambda: Poptrie.from_rib(rib),
            )
            host, port = await server.start()
            try:
                reader, writer = await _client(host, port)
                response = await _roundtrip(
                    reader, writer, protocol.OP_RELOAD, 1
                )
                assert response.ok and response.generation == 1
                assert server.stats.reloads == 1
                writer.close()
            finally:
                await server.stop()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# the flagship scenario: concurrent clients through a transactional hot swap
# ---------------------------------------------------------------------------

SWAP_PREFIX = "198.128.0.0/9"


def _outside_swap_prefix(key: int) -> bool:
    return (int(key) >> 23) != (Prefix.parse(SWAP_PREFIX).value >> 23)


class TestHotSwapUnderLoad:
    def test_concurrent_clients_across_txn_swap(self):
        from repro.data.synth import generate_table
        from repro.data.traffic import random_addresses
        from repro.robust.txn import TransactionalPoptrie

        rib, _ = generate_table(n_prefixes=4000, n_nexthops=8, seed=11)
        base = Poptrie.from_rib(rib)
        handle = TableHandle(base)
        # Query keys avoid the announced prefix, so one oracle stays exact
        # across the swap; everything else about the table changes owner.
        pool = [int(k) for k in random_addresses(4096, seed=11)
                if _outside_swap_prefix(k)]
        expected = {key: base.lookup(key) for key in pool}
        obs.enable()
        try:
            report, server = asyncio.run(
                self._scenario(handle, rib, pool, expected,
                               TransactionalPoptrie)
            )
        finally:
            registry = obs.registry()
            obs.disable()
        # Not one response failed, misrouted, or was dropped by the swap.
        assert report.errors == 0
        assert report.mismatched == 0
        assert report.completed == report.sent
        # The swap was observed mid-run: responses carry both generations.
        assert sorted(report.generations) == [0, 1]
        assert server.stats.reloads == 0  # swap came from the txn, not RELOAD
        assert handle.generation == 1
        # Coalescing really happened: at least one batch served >1 request.
        assert server.stats.max_coalesced > 1
        assert server.stats.batched_requests == report.sent
        hist = registry.histogram(
            "repro_server_coalesced_requests",
            buckets=obs.OCCUPANCY_BUCKETS,
            table=handle.name,
        )
        cumulative = dict(hist.cumulative())
        total = cumulative[float("inf")]
        assert total == server.stats.batches
        assert total > cumulative[1], "no coalesced batch held >1 request"
        swaps = registry.counter(
            "repro_server_swaps_total", table=handle.name
        )
        assert swaps.value == 1

    async def _scenario(self, handle, rib, pool, expected, txn_cls):
        server = LookupServer(
            handle, ServerConfig(max_batch=8192, max_wait_us=1000.0)
        )
        host, port = await server.start()
        generator = LoadGenerator(
            host,
            port,
            LoadGenConfig(
                connections=4, rate=3000.0, duration=1.0, batch=8,
                schedule="poisson", seed=11,
            ),
            keys=pool,
            oracle=expected.__getitem__,
        )
        load = asyncio.create_task(generator.run())
        await asyncio.sleep(0.5)
        # Control plane: commit one announcement transactionally, publish
        # the committed trie through the handle while load keeps flowing.
        txn = txn_cls(rib=rib)
        txn.announce(Prefix.parse(SWAP_PREFIX), 1)
        await handle.swap_async(txn.trie, timeout=10)
        report = await load
        await server.stop()
        return report, server


# ---------------------------------------------------------------------------
# load generator unit behaviour
# ---------------------------------------------------------------------------


class TestLoadGenerator:
    def test_arrival_schedules_are_deterministic(self):
        gen = LoadGenerator(
            "127.0.0.1", 1,
            LoadGenConfig(rate=100.0, schedule="poisson", seed=3),
            keys=[1],
        )
        a = [next(iter_gaps) for iter_gaps in (gen._arrival_gaps(),)
             for _ in range(5)]
        b_iter = gen._arrival_gaps()
        b = [next(b_iter) for _ in range(5)]
        assert a == b
        uniform = LoadGenerator(
            "127.0.0.1", 1,
            LoadGenConfig(rate=200.0, schedule="uniform"),
            keys=[1],
        )._arrival_gaps()
        assert [next(uniform) for _ in range(3)] == [1 / 200.0] * 3

    def test_unknown_schedule_rejected(self):
        gen = LoadGenerator(
            "127.0.0.1", 1, LoadGenConfig(schedule="bursty"), keys=[1]
        )
        with pytest.raises(ValueError):
            next(gen._arrival_gaps())

    def test_report_percentiles_and_render(self):
        from repro.server.loadgen import LoadReport

        report = LoadReport(
            sent=4, completed=4, duration=2.0, target_rate=2.0,
            latencies_us=[100.0, 200.0, 300.0, 400.0],
            generations={0: 3, 1: 1},
        )
        assert report.throughput_rps == 2.0
        assert report.percentile(50) == 200.0
        assert report.percentile(100) == 400.0
        summary = report.to_dict(batch=16)
        assert summary["swaps_observed"] == 1
        assert summary["throughput_klps"] == pytest.approx(0.032)
        assert "p999" in summary["latency_us"]
        assert "1 swap(s) observed" in report.render(batch=16)


def test_server_scenario_smoke():
    """The bench scenario end-to-end, tiny: the BENCH_server.json shape."""
    from repro.bench.server_scenario import run_server_bench

    t0 = time.perf_counter()
    result = run_server_bench(
        routes=2000, duration=0.4, rate=800.0, connections=2, batch=8,
        seed=5,
    )
    assert result["scenario"] == "server_throughput"
    assert result["errors"] == 0
    assert result["loadgen"]["mismatched"] == 0
    assert result["swap_generation"] == 1
    assert result["throughput_rps"] > 0
    assert {"mean", "p50", "p90", "p99", "p999"} <= set(
        result["latency_us"]
    )
    assert time.perf_counter() - t0 < 30


# ---------------------------------------------------------------------------
# protocol v2: deadlines and backward compatibility
# ---------------------------------------------------------------------------


class TestProtocolV2:
    def test_deadline_roundtrip(self):
        payload = protocol.encode_request(
            protocol.OP_LOOKUP4, 7, [1, 2], deadline_us=1500
        )
        request = protocol.decode_request(payload)
        assert request.version == 2
        assert request.deadline_us == 1500
        assert request.keys.tolist() == [1, 2]

    def test_v1_request_still_decodes(self):
        payload = protocol.encode_request(
            protocol.OP_LOOKUP4, 7, [1, 2], version=1
        )
        request = protocol.decode_request(payload)
        assert request.version == 1
        assert request.deadline_us == 0
        assert request.keys.tolist() == [1, 2]

    def test_v1_cannot_carry_a_deadline(self):
        with pytest.raises(ProtocolError):
            protocol.encode_request(
                protocol.OP_PING, 1, deadline_us=5, version=1
            )
        with pytest.raises(ProtocolError):
            protocol.encode_request(protocol.OP_PING, 1, deadline_us=1 << 32)

    def test_truncated_deadline_field(self):
        payload = protocol.encode_request(protocol.OP_PING, 1)
        with pytest.raises(ProtocolError):
            protocol.decode_request(payload[:5])  # v2 header cut short

    def test_response_version_echo(self):
        for version in (1, 2):
            payload = protocol.encode_response(3, version=version)
            assert payload[0] == version
            assert protocol.decode_response(payload).ok

    def test_frame_bytes_matches_write_frame(self):
        payload = protocol.encode_response(1)
        frame = protocol.frame_bytes(payload)
        assert frame[4:] == payload
        assert int.from_bytes(frame[:4], "big") == len(payload)


# ---------------------------------------------------------------------------
# overload control and deadline shedding
# ---------------------------------------------------------------------------


async def _pipelined_sweep(host, port, keys_per_request, count, deadline_us=0):
    """Fire `count` lookup frames back-to-back, then gather all responses."""
    reader, writer = await _client(host, port)
    for request_id in range(1, count + 1):
        protocol.write_frame(
            writer,
            protocol.encode_request(
                protocol.OP_LOOKUP4,
                request_id,
                keys_per_request,
                deadline_us=deadline_us,
            ),
        )
    await writer.drain()
    responses = {}
    for _ in range(count):
        payload = await protocol.read_frame(reader)
        assert payload is not None
        response = protocol.decode_response(payload)
        responses[response.request_id] = response
    writer.close()
    return responses


class TestOverloadControl:
    def test_burst_beyond_admission_limit_sheds(self):
        """2x the admission limit: the excess sheds, served answers exact."""

        async def scenario():
            rib = small_rib()
            trie = Poptrie.from_rib(rib)
            server = LookupServer(
                TableHandle(trie),
                ServerConfig(
                    max_pending_requests=4,
                    max_wait_us=100_000.0,  # dispatcher naps; the queue fills
                ),
            )
            host, port = await server.start()
            keys = [Prefix.parse("10.1.2.3/32").value]
            try:
                responses = await _pipelined_sweep(host, port, keys, 16)
            finally:
                await server.stop()
            return server, responses, trie.lookup(keys[0])

        server, responses, expected = asyncio.run(scenario())
        statuses = [r.status for r in responses.values()]
        shed = statuses.count(protocol.STATUS_OVERLOAD)
        served = statuses.count(protocol.STATUS_OK)
        assert shed == server.stats.shed_overload >= 8
        assert served == 16 - shed > 0
        # Zero misroutes: every served answer is exact.
        for response in responses.values():
            if response.ok:
                assert response.results.tolist() == [expected]
        assert "dispatcher queue full" in next(
            r.text
            for r in responses.values()
            if r.status == protocol.STATUS_OVERLOAD
        )

    def test_key_budget_also_bounds_admission(self):
        async def scenario():
            server = LookupServer(
                TableHandle(Poptrie.from_rib(small_rib())),
                ServerConfig(max_pending_keys=8, max_wait_us=100_000.0),
            )
            host, port = await server.start()
            try:
                responses = await _pipelined_sweep(
                    host, port, [1, 2, 3, 4], 6
                )
            finally:
                await server.stop()
            return responses

        responses = asyncio.run(scenario())
        statuses = [r.status for r in responses.values()]
        assert statuses.count(protocol.STATUS_OVERLOAD) >= 4
        assert statuses.count(protocol.STATUS_OK) >= 1

    def test_expired_deadline_is_shed(self):
        async def scenario():
            server = LookupServer(
                TableHandle(Poptrie.from_rib(small_rib())),
                ServerConfig(max_wait_us=50_000.0),  # 50ms window
            )
            host, port = await server.start()
            try:
                reader, writer = await _client(host, port)
                protocol.write_frame(
                    writer,
                    protocol.encode_request(
                        protocol.OP_LOOKUP4, 1, [1], deadline_us=1_000
                    ),
                )
                await writer.drain()
                payload = await protocol.read_frame(reader)
                shed = protocol.decode_response(payload)
                # A fresh request without a deadline is served normally.
                ok = await _roundtrip(
                    reader, writer, protocol.OP_LOOKUP4, 2, [1]
                )
                writer.close()
            finally:
                await server.stop()
            return server, shed, ok

        server, shed, ok = asyncio.run(scenario())
        assert shed.status == protocol.STATUS_DEADLINE_EXCEEDED
        assert "expired" in shed.text
        assert ok.ok
        assert server.stats.shed_deadline == 1

    def test_v1_client_served_by_v2_server(self):
        """An old client (no deadline field) gets version-1 responses."""

        async def scenario():
            rib = small_rib()
            trie = Poptrie.from_rib(rib)
            server = LookupServer(TableHandle(trie))
            host, port = await server.start()
            key = Prefix.parse("192.0.2.9/32").value
            try:
                reader, writer = await _client(host, port)
                protocol.write_frame(
                    writer,
                    protocol.encode_request(
                        protocol.OP_LOOKUP4, 11, [key], version=1
                    ),
                )
                await writer.drain()
                payload = await protocol.read_frame(reader)
                writer.close()
            finally:
                await server.stop()
            return payload, trie.lookup(key)

        payload, expected = asyncio.run(scenario())
        assert payload[0] == 1  # the response echoes the client's version
        response = protocol.decode_response(payload)
        assert response.ok
        assert response.results.tolist() == [expected]

    def test_shed_counter_reaches_obs(self):
        async def scenario():
            server = LookupServer(
                TableHandle(Poptrie.from_rib(small_rib())),
                ServerConfig(max_pending_requests=1, max_wait_us=100_000.0),
            )
            host, port = await server.start()
            try:
                await _pipelined_sweep(host, port, [1], 4)
            finally:
                await server.stop()

        obs.enable()
        try:
            asyncio.run(scenario())
            counter = obs.registry().counter(
                "repro_server_shed_total", reason="overload"
            )
            assert counter.value >= 2
        finally:
            obs.disable()


# ---------------------------------------------------------------------------
# OP_RELOAD failure: the previous generation keeps serving
# ---------------------------------------------------------------------------


class TestReloadFailure:
    def test_failed_rebuild_keeps_old_generation(self):
        from repro.robust.faults import FaultPlan

        async def scenario(rib):
            server = LookupServer(
                TableHandle(Poptrie.from_rib(rib)),
                rebuild=lambda: Poptrie.from_rib(rib),
            )
            host, port = await server.start()
            key = Prefix.parse("10.1.2.3/32").value
            try:
                reader, writer = await _client(host, port)
                with FaultPlan(build_fail_at=1):
                    failed = await _roundtrip(
                        reader, writer, protocol.OP_RELOAD, 1
                    )
                # Lookups keep succeeding on the old generation...
                lookup = await _roundtrip(
                    reader, writer, protocol.OP_LOOKUP4, 2, [key]
                )
                # ...and a later reload (fault disarmed) succeeds.
                reloaded = await _roundtrip(
                    reader, writer, protocol.OP_RELOAD, 3
                )
                writer.close()
            finally:
                await server.stop()
            return server, failed, lookup, reloaded

        rib = small_rib()
        server, failed, lookup, reloaded = asyncio.run(scenario(rib))
        assert failed.status == protocol.STATUS_SERVER_ERROR
        assert "reload failed" in failed.text
        assert failed.generation == 0  # unchanged
        assert server.stats.reload_failures == 1
        assert lookup.ok and lookup.generation == 0
        assert reloaded.ok and reloaded.generation == 1
        assert server.stats.reloads == 1


# ---------------------------------------------------------------------------
# network-level response faults (chaos building blocks)
# ---------------------------------------------------------------------------


class TestConnectionFaults:
    def test_dropped_response_closes_cleanly(self):
        from repro.robust.faults import FaultPlan

        async def scenario():
            server = LookupServer(TableHandle(Poptrie.from_rib(small_rib())))
            host, port = await server.start()
            try:
                with FaultPlan(drop_response_at=1) as plan:
                    reader, writer = await _client(host, port)
                    protocol.write_frame(
                        writer,
                        protocol.encode_request(protocol.OP_LOOKUP4, 1, [1]),
                    )
                    await writer.drain()
                    payload = await protocol.read_frame(reader)
                    writer.close()
            finally:
                await server.stop()
            return server, plan, payload

        server, plan, payload = asyncio.run(scenario())
        assert payload is None  # connection closed before any byte
        assert plan.fired == [("conn-drop", 1)]
        assert server.stats.dropped_responses == 1

    def test_torn_response_breaks_mid_frame(self):
        from repro.robust.faults import FaultPlan

        async def scenario():
            server = LookupServer(TableHandle(Poptrie.from_rib(small_rib())))
            host, port = await server.start()
            try:
                with FaultPlan(torn_response_at=1, torn_response_bytes=6):
                    reader, writer = await _client(host, port)
                    protocol.write_frame(
                        writer,
                        protocol.encode_request(protocol.OP_LOOKUP4, 1, [1]),
                    )
                    await writer.drain()
                    with pytest.raises(ProtocolError):
                        await protocol.read_frame(reader)
                    writer.close()
            finally:
                await server.stop()
            return server

        server = asyncio.run(scenario())
        assert server.stats.torn_responses == 1

    def test_loadgen_retries_through_dropped_responses(self):
        from repro.robust.faults import FaultPlan

        async def scenario():
            rib = small_rib()
            trie = Poptrie.from_rib(rib)
            server = LookupServer(TableHandle(trie))
            host, port = await server.start()
            generator = LoadGenerator(
                host,
                port,
                LoadGenConfig(
                    connections=1, rate=200.0, duration=0.3, batch=4,
                    schedule="uniform", max_retries=3, request_timeout=2.0,
                    backoff_base=0.005, retry_budget=1.0,
                ),
                keys=[Prefix.parse("10.1.2.3/32").value],
                oracle=trie.lookup,
            )
            try:
                with FaultPlan(drop_response_at=3):
                    report = await generator.run()
            finally:
                await server.stop()
            return report

        report = asyncio.run(scenario())
        assert report.sent > 5
        assert report.retries >= 1
        assert report.reconnects >= 1
        assert report.mismatched == 0
        # The dropped response was recovered by a retry: no failed requests.
        assert report.transport_errors == 0
        assert report.completed == report.sent
