"""Tests for the GeoIP workload generator (repro.data.geoip)."""

import pytest

from repro.data.geoip import COUNTRY_WEIGHTS, generate_geoip_table
from repro.net.values import NO_ROUTE


class TestGenerator:
    def test_route_count_and_attached_values(self):
        rib, values = generate_geoip_table(500, seed=1)
        assert len(rib) == 500
        assert rib.values is values
        assert values.kind == "cc"
        assert 1 <= len(values) <= len(COUNTRY_WEIGHTS)

    def test_deterministic_per_seed(self):
        a, _ = generate_geoip_table(300, seed=7)
        b, _ = generate_geoip_table(300, seed=7)
        assert sorted(
            (p.text, v) for p, v in a.routes()
        ) == sorted((p.text, v) for p, v in b.routes())

    def test_seeds_differ(self):
        a, _ = generate_geoip_table(300, seed=1)
        b, _ = generate_geoip_table(300, seed=2)
        assert sorted(p.text for p, _ in a.routes()) != sorted(
            p.text for p, _ in b.routes()
        )

    def test_every_route_id_resolves(self):
        rib, values = generate_geoip_table(400, seed=3)
        for _, route in rib.routes():
            assert route != NO_ROUTE
            code = values[route]
            assert len(code) == 2 and code.isupper()

    def test_n_countries_truncates_pool(self):
        rib, values = generate_geoip_table(400, n_countries=5, seed=1)
        allowed = {code for code, _ in COUNTRY_WEIGHTS[:5]}
        assert {values[route] for _, route in rib.routes()} <= allowed

    def test_prefix_lengths_span_blocks_and_announcements(self):
        rib, _ = generate_geoip_table(2000, seed=1)
        lengths = {prefix.length for prefix, _ in rib.routes()}
        assert min(lengths) >= 8
        assert max(lengths) <= 28
        assert any(length <= 12 for length in lengths), "allocation blocks"
        assert any(length >= 16 for length in lengths), "announcements"

    def test_locality_validated(self):
        with pytest.raises(ValueError):
            generate_geoip_table(10, locality=1.5)

    def test_empty_country_pool_rejected(self):
        with pytest.raises(ValueError):
            generate_geoip_table(10, n_countries=0)


class TestAggregationPayoff:
    """The workload's reason to exist: low value entropy aggregates well."""

    def test_high_locality_aggregates_harder(self):
        from repro.core.aggregate import aggregate_simple

        tight, _ = generate_geoip_table(1500, seed=5, locality=0.95)
        loose, _ = generate_geoip_table(1500, seed=5, locality=0.30)
        assert len(aggregate_simple(tight)) < len(aggregate_simple(loose))

    def test_aggregation_is_exact_on_geoip(self):
        from repro.core.aggregate import aggregated_rib
        from repro.data.traffic import random_addresses

        rib, _ = generate_geoip_table(1200, seed=9)
        for span in (1, 6):
            out = aggregated_rib(rib, span=span)
            assert out.values is rib.values
            for key in random_addresses(3000, seed=4):
                assert out.lookup(int(key)) == rib.lookup(int(key))

    def test_structure_build_resolves_countries(self):
        from repro.lookup.registry import get

        rib, values = generate_geoip_table(800, seed=2)
        structure = get("Poptrie18").from_rib(rib)
        assert structure.values is values
        hits = misses = 0
        from repro.data.traffic import random_addresses

        for key in random_addresses(2000, seed=6):
            payload = structure.lookup_value(int(key))
            if payload is None:
                misses += 1
            else:
                assert len(payload) == 2 and payload.isupper()
                hits += 1
        assert hits > 0
