"""Run the doctest examples embedded in the library's docstrings."""

import doctest

import pytest

import repro.bench.report
import repro.cachesim.cache
import repro.core.poptrie
import repro.core.update
import repro.errors
import repro.mem.buddy
import repro.mem.layout
import repro.net.values
import repro.net.ip
import repro.net.prefix
import repro.net.rib
import repro.obs
import repro.robust.faults
import repro.robust.txn
import repro.router.forwarding
import repro.server.handle

MODULES = [
    repro.obs,
    repro.errors,
    repro.net.ip,
    repro.net.prefix,
    repro.net.values,
    repro.net.rib,
    repro.mem.buddy,
    repro.mem.layout,
    repro.core.poptrie,
    repro.core.update,
    repro.robust.faults,
    repro.robust.txn,
    repro.cachesim.cache,
    repro.bench.report,
    repro.router.forwarding,
    repro.server.handle,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, optionflags=doctest.ELLIPSIS)
    assert results.failed == 0, f"{results.failed} doctest failures"
    # Modules listed here are expected to actually carry examples.
    assert results.attempted > 0, "no doctests found"
