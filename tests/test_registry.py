"""Tests for the algorithm registry and the uniform constructor surface."""

from __future__ import annotations

import pytest

from repro.lookup import registry
from repro.lookup.base import LookupStructure, NoOptions
from tests.conftest import boundary_keys, make_random_rib, random_keys


@pytest.fixture(scope="module")
def rib():
    return make_random_rib(400, seed=21, lengths=list(range(8, 29)))


class TestRegistryBasics:
    def test_available_contains_roster_and_extras(self):
        names = registry.available()
        assert set(registry.STANDARD_ALGORITHMS) <= set(names)
        for extra in ("DIR-24-8", "Multibit", "Patricia", "Lulea",
                      "Bloom", "BSearch-Lengths", "Poptrie0"):
            assert extra in names

    def test_get_returns_entry(self):
        entry = registry.get("Poptrie18")
        assert entry.name == "Poptrie18"
        assert entry.options == {"s": 18}
        assert entry.aggregate and entry.pass_fib_size

    def test_get_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="unknown algorithm 'Nope'"):
            registry.get("Nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            registry.register("Radix", object)

    def test_decorator_registration_and_cleanup(self):
        @registry.register("TestOnly", answer=42)
        class _Probe:
            @classmethod
            def from_rib(cls, rib, **options):
                return options

        try:
            entry = registry.get("TestOnly")
            assert entry.cls is _Probe
            assert entry.from_rib(None) == {"answer": 42}
            assert entry.from_rib(None, answer=7) == {"answer": 7}
        finally:
            del registry._ENTRIES["TestOnly"]


class TestUniformConstructors:
    def test_every_entry_builds_from_plain_rib(self, rib):
        """The acceptance criterion: every registered structure builds via
        get(name).from_rib(rib) and agrees with the RIB."""
        keys = boundary_keys(rib)[:2000] + random_keys(500, seed=9)
        for name in registry.available():
            structure = registry.get(name).from_rib(rib)
            assert isinstance(structure, LookupStructure), name
            assert structure.verify_against(rib, keys) == [], name

    @pytest.mark.parametrize("name", ["Radix", "SAIL", "Tree BitMap",
                                      "D18R", "Poptrie18", "Multibit"])
    def test_unknown_option_raises_typeerror(self, rib, name):
        with pytest.raises(TypeError):
            registry.get(name).from_rib(rib, definitely_not_an_option=1)

    def test_config_object_equivalent_to_keywords(self, rib):
        from repro.core.poptrie import Poptrie, PoptrieConfig

        by_config = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        by_kw = Poptrie.from_rib(rib, s=16)
        assert by_config.config == by_kw.config

    def test_keyword_overrides_config(self, rib):
        from repro.core.poptrie import Poptrie, PoptrieConfig

        trie = Poptrie.from_rib(rib, PoptrieConfig(s=16), s=0)
        assert trie.config.s == 0

    def test_wrong_config_type_raises(self, rib):
        from repro.core.poptrie import PoptrieConfig
        from repro.lookup.sail import Sail

        with pytest.raises(TypeError, match="NoOptions"):
            Sail.from_rib(rib, config=PoptrieConfig())

    def test_no_options_resolve(self):
        assert NoOptions.resolve(None, {}) == NoOptions()
        with pytest.raises(TypeError):
            NoOptions.resolve(None, {"stray": 1})


class TestValuePlaneOption:
    """The uniform ``values=`` build option (docs/VALUES.md)."""

    def _valued_rib(self):
        from repro.net.values import ValueTable

        shapes = make_random_rib(60, seed=33, lengths=list(range(8, 25)))
        codes = ("US", "CN", "JP", "DE")
        values = ValueTable("cc")
        rib = type(shapes)(width=shapes.width, values=values)
        for i, (prefix, _) in enumerate(shapes.routes()):
            rib.insert(prefix, values.intern(codes[i % len(codes)]))
        return rib, values

    def test_round_trip_through_every_entry(self):
        """Satellite: a valued RIB builds — and round-trips through the
        image plane — for every image-capable entry, resolving the same
        payloads the RIB holds."""
        rib, values = self._valued_rib()
        probe_keys = [prefix.value for prefix, _ in rib.routes()][:20]
        for name in registry.available():
            entry = registry.get(name)
            structure = entry.from_rib(rib)
            assert structure.values is values, name
            for key in probe_keys:
                assert structure.lookup_value(key) == values.get(
                    rib.lookup(key)
                ), name
            if not entry.supports_image:
                continue
            rebuilt = entry.cls.from_image(structure.to_image())
            assert rebuilt.values == values, name
            for key in probe_keys:
                assert rebuilt.lookup_value(key) == structure.lookup_value(
                    key
                ), name

    def test_values_must_be_a_table(self, rib):
        for name in ("Radix", "Poptrie18", "SAIL"):
            with pytest.raises(TypeError, match="values"):
                registry.get(name).from_rib(rib, values={"CN": 1})

    def test_unknown_keys_still_rejected_alongside_values(self, rib):
        from repro.net.values import ValueTable

        with pytest.raises(TypeError):
            registry.get("Poptrie18").from_rib(
                rib, values=ValueTable("u16"), definitely_not_an_option=1
            )


class TestStandardRoster:
    def test_matches_legacy_behaviour(self, rib):
        roster = registry.standard_roster(rib)
        assert list(roster) == list(registry.STANDARD_ALGORITHMS)
        assert all(s is not None for s in roster.values())

    def test_aggregation_only_for_flagged_entries(self, rib):
        aggregated = registry.standard_roster(rib, names=("Poptrie18",))
        raw = registry.standard_roster(
            rib, names=("Poptrie18",), aggregate_for_poptrie=False
        )
        assert (aggregated["Poptrie18"].memory_bytes()
                <= raw["Poptrie18"].memory_bytes())

    def test_modified_dxr_flag(self, rib):
        roster = registry.standard_roster(
            rib, names=("D16R",), modified_dxr=True
        )
        assert roster["D16R"].modified
