"""Tests for the cache hierarchy and cycle model."""

import numpy as np
import pytest

from tests.conftest import random_keys

from repro.cachesim.cache import Cache
from repro.cachesim.cycles import (
    CycleModel,
    cdf_points,
    cycles_by_radix_depth,
    depth_quartiles,
    percentile_summary,
)
from repro.cachesim.hierarchy import CacheHierarchy, HierarchyConfig, LevelConfig
from repro.cachesim.profiles import HASWELL_I7_4770K, XEON_X3430


class TestCache:
    def test_first_access_misses(self):
        c = Cache(size_bytes=128, ways=2)
        assert c.access(0) is False

    def test_second_access_hits(self):
        c = Cache(size_bytes=128, ways=2)
        c.access(0)
        assert c.access(0) is True

    def test_lru_eviction(self):
        c = Cache(size_bytes=128, ways=2)  # 1 set, 2 ways
        c.access(0)
        c.access(1)
        c.access(0)  # refresh 0 → victim is 1
        c.access(2)  # evicts 1
        assert c.access(0) is True
        assert c.access(1) is False

    def test_set_mapping_isolates_lines(self):
        c = Cache(size_bytes=256, ways=1)  # 4 sets, direct mapped
        c.access(0)
        c.access(1)  # different set — must not evict line 0
        assert c.access(0) is True

    def test_conflict_in_same_set(self):
        c = Cache(size_bytes=256, ways=1)  # 4 sets
        c.access(0)
        c.access(4)  # same set (4 % 4 == 0) — evicts line 0
        assert c.access(0) is False

    def test_counters_and_hit_rate(self):
        c = Cache(size_bytes=128, ways=2)
        c.access(0)
        c.access(0)
        assert (c.hits, c.misses) == (1, 1)
        assert c.hit_rate == 0.5

    def test_contains_does_not_touch(self):
        c = Cache(size_bytes=128, ways=2)
        c.access(0)
        hits = c.hits
        assert c.contains(0)
        assert c.hits == hits

    def test_flush(self):
        c = Cache(size_bytes=128, ways=2)
        c.access(0)
        c.flush()
        assert c.access(0) is False

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Cache(size_bytes=100, ways=3)


def tiny_hierarchy(dram=100):
    return HierarchyConfig(
        name="tiny",
        levels=(
            LevelConfig("L1", 128, 2, 4),
            LevelConfig("L2", 512, 2, 12),
        ),
        dram_latency=dram,
        instructions_per_cycle=2.0,
    )


class TestHierarchy:
    def test_cold_access_costs_dram(self):
        h = CacheHierarchy(tiny_hierarchy())
        assert h.access(0x1000) == 100
        assert h.dram_accesses == 1

    def test_warm_access_costs_l1(self):
        h = CacheHierarchy(tiny_hierarchy())
        h.access(0x1000)
        assert h.access(0x1000) == 4

    def test_l2_hit_after_l1_eviction(self):
        h = CacheHierarchy(tiny_hierarchy())
        # L1 is one set × 2 ways: lines 0 and 4 conflict there and evict
        # line 0, but in L2 (4 sets) only lines {0, 4} share set 0, so
        # line 0 survives in L2.
        for address in (0x0, 0x80, 0x100):
            h.access(address)
        assert h.access(0x0) == 12  # L2 hit
        assert h.access(0x0) == 4   # promoted back into L1

    def test_line_straddle_touches_both_lines(self):
        h = CacheHierarchy(tiny_hierarchy())
        h.access(60, size=8)  # spans lines 0 and 1
        assert h.access(0) == 4
        assert h.access(64) == 4

    def test_replay_sums(self):
        h = CacheHierarchy(tiny_hierarchy())
        total = h.replay([(0, 4), (0, 4)])
        assert total == 104

    def test_flush_and_stats(self):
        h = CacheHierarchy(tiny_hierarchy())
        h.access(0)
        h.flush()
        assert h.dram_accesses == 0
        assert all(hits == 0 for _, hits, _ in h.stats())


class TestProfiles:
    def test_haswell_matches_paper_section4(self):
        levels = {l.name: l for l in HASWELL_I7_4770K.levels}
        assert levels["L1d"].size_bytes == 32 * 1024
        assert levels["L2"].size_bytes == 256 * 1024
        assert levels["L3"].size_bytes == 8 * 1024 * 1024
        assert levels["L1d"].latency == 4
        assert levels["L2"].latency == 12
        assert levels["L3"].latency == 36

    def test_xeon_differs(self):
        assert XEON_X3430.name != HASWELL_I7_4770K.name
        assert XEON_X3430.instructions_per_cycle < (
            HASWELL_I7_4770K.instructions_per_cycle
        )


class TestCycleModel:
    def _model_and_structure(self, bgp_rib):
        from repro.core.poptrie import Poptrie, PoptrieConfig

        return CycleModel(HASWELL_I7_4770K), Poptrie.from_rib(
            bgp_rib, PoptrieConfig(s=16)
        )

    def test_deterministic(self, bgp_rib):
        keys = random_keys(2000, seed=21)
        model_a, trie = self._model_and_structure(bgp_rib)
        cycles_a = model_a.measure(trie, keys, warmup=500)
        model_b = CycleModel(HASWELL_I7_4770K)
        cycles_b = model_b.measure(trie, keys, warmup=500)
        assert (cycles_a == cycles_b).all()

    def test_positive_and_bounded(self, bgp_rib):
        model, trie = self._model_and_structure(bgp_rib)
        cycles = model.measure(trie, random_keys(1000, seed=22))
        assert (cycles > 0).all()
        # A worst case lookup is a handful of DRAM accesses, not thousands.
        assert cycles.max() < 2000

    def test_warm_cache_cheaper_than_cold(self, bgp_rib):
        model, trie = self._model_and_structure(bgp_rib)
        keys = random_keys(3000, seed=23)
        cold = model.measure(trie, keys, warmup=0).mean()
        warm = model.measure(trie, keys, warmup=0).mean()  # second pass
        assert warm < cold


class TestAnalysisHelpers:
    def test_percentile_summary(self):
        cycles = np.array([10] * 99 + [100])
        summary = percentile_summary(cycles)
        assert summary.p50 == 10
        assert summary.p99 >= 10
        assert summary.mean == pytest.approx(10.9)

    def test_cdf_points_monotonic(self):
        cycles = np.array([10, 20, 30, 300])
        points = cdf_points(cycles, max_cycles=300)
        fractions = [f for _, f in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_cycles_by_radix_depth(self, bgp_rib):
        keys = random_keys(500, seed=24)
        cycles = np.arange(len(keys))
        buckets = cycles_by_radix_depth(cycles, keys, bgp_rib)
        assert sum(len(v) for v in buckets.values()) == len(keys)
        rows = depth_quartiles(buckets)
        for _, p5, p25, p50, p75, p95 in rows:
            assert p5 <= p25 <= p50 <= p75 <= p95


class TestTlb:
    def _config(self):
        from repro.cachesim.hierarchy import TlbConfig

        return HierarchyConfig(
            name="tlb-test",
            levels=(LevelConfig("L1", 4096, 4, 4),),
            dram_latency=100,
            instructions_per_cycle=2.0,
            tlb=TlbConfig(l1_entries=2, l2_entries=4, l2_latency=8,
                          walk_penalty=30, page_bytes=4096),
        )

    def test_first_touch_pays_full_walk(self):
        h = CacheHierarchy(self._config())
        cost = h.access(0x100000)
        assert cost == 100 + 8 + 30  # DRAM + L2-TLB miss + walk

    def test_same_page_hits_tlb(self):
        h = CacheHierarchy(self._config())
        h.access(0x100000)
        # Different line, same page: cache miss but TLB hit.
        assert h.access(0x100000 + 64) == 100

    def test_l2_tlb_catches_recent_pages(self):
        h = CacheHierarchy(self._config())
        pages = [0x0, 0x1000, 0x2000]  # 3 pages > 2 L1-TLB entries
        for address in pages:
            h.access(address)
        # Page 0 fell out of the 2-entry L1 TLB but is in the 4-entry L2.
        cost = h.access(0x0)
        assert cost == 4 + 8  # L1 cache hit + L2 TLB latency

    def test_flush_clears_tlbs(self):
        h = CacheHierarchy(self._config())
        h.access(0x0)
        h.flush()
        assert h.access(0x0) == 100 + 8 + 30

    def test_disabled_when_config_absent(self):
        h = CacheHierarchy(tiny_hierarchy())
        assert h.access(0x999000) == 100  # pure cache cost

    def test_profiles_carry_tlbs(self):
        assert HASWELL_I7_4770K.tlb is not None
        assert XEON_X3430.tlb is not None
