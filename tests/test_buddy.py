"""Unit and property tests for the buddy allocator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.buddy import BuddyAllocator, OutOfMemory


class TestBasics:
    def test_alloc_rounds_to_power_of_two(self):
        a = BuddyAllocator(capacity=64)
        offset = a.alloc(3)
        assert a.block_size(offset) == 4

    def test_alloc_exact_power(self):
        a = BuddyAllocator(capacity=64)
        offset = a.alloc(8)
        assert a.block_size(offset) == 8

    def test_natural_alignment(self):
        a = BuddyAllocator(capacity=64)
        for size in (1, 2, 4, 8, 16):
            offset = a.alloc(size)
            assert offset % a.block_size(offset) == 0

    def test_blocks_do_not_overlap(self):
        a = BuddyAllocator(capacity=64)
        spans = []
        for _ in range(8):
            offset = a.alloc(5)  # rounds to 8
            spans.append((offset, offset + 8))
        spans.sort()
        for (s1, e1), (s2, _) in zip(spans, spans[1:]):
            assert e1 <= s2

    def test_used_slots_accounting(self):
        a = BuddyAllocator(capacity=64)
        x = a.alloc(4)
        assert a.used_slots == 4
        a.free(x)
        assert a.used_slots == 0

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            BuddyAllocator().alloc(0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            BuddyAllocator(capacity=0)


class TestFree:
    def test_free_then_realloc_reuses(self):
        a = BuddyAllocator(capacity=16, auto_grow=False)
        x = a.alloc(16)
        a.free(x)
        y = a.alloc(16)
        assert y == x

    def test_coalescing_restores_full_block(self):
        a = BuddyAllocator(capacity=16, auto_grow=False)
        offsets = [a.alloc(1) for _ in range(16)]
        for offset in offsets:
            a.free(offset)
        # If buddies coalesced all the way back up, a 16-slot block fits.
        assert a.alloc(16) == 0

    def test_double_free_raises(self):
        a = BuddyAllocator(capacity=16)
        x = a.alloc(2)
        a.free(x)
        with pytest.raises(ValueError):
            a.free(x)

    def test_free_unknown_offset_raises(self):
        with pytest.raises(ValueError):
            BuddyAllocator(capacity=16).free(3)


class TestGrowth:
    def test_grows_when_exhausted(self):
        a = BuddyAllocator(capacity=8)
        offsets = [a.alloc(8) for _ in range(4)]
        assert len(set(offsets)) == 4
        assert a.capacity >= 32
        assert a.grow_count >= 2

    def test_oom_when_growth_disabled(self):
        a = BuddyAllocator(capacity=8, auto_grow=False)
        a.alloc(8)
        with pytest.raises(OutOfMemory):
            a.alloc(1)

    def test_grow_preserves_live_blocks(self):
        a = BuddyAllocator(capacity=8)
        x = a.alloc(8)
        y = a.alloc(8)  # forces growth
        assert x != y
        assert a.is_live(x) and a.is_live(y)
        a.check_invariants()

    def test_alloc_larger_than_capacity(self):
        a = BuddyAllocator(capacity=8)
        offset = a.alloc(100)  # rounds to 128
        assert a.block_size(offset) == 128


class TestIntrospection:
    def test_live_blocks(self):
        a = BuddyAllocator(capacity=32)
        x = a.alloc(4)
        blocks = a.live_blocks()
        assert blocks[x] == 4

    def test_free_slots(self):
        a = BuddyAllocator(capacity=32, auto_grow=False)
        a.alloc(8)
        assert a.free_slots() == 24

    def test_counters(self):
        a = BuddyAllocator(capacity=32)
        x = a.alloc(2)
        a.free(x)
        assert a.alloc_count == 1 and a.free_count == 1


class TestInvariants:
    @settings(max_examples=60, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=1, max_value=20)),
            min_size=1,
            max_size=80,
        )
    )
    def test_random_alloc_free_sequences(self, ops):
        """Any alloc/free interleaving preserves the allocator invariants:
        natural alignment, no overlap, no lost slots."""
        a = BuddyAllocator(capacity=32)
        live = []
        for is_alloc, size in ops:
            if is_alloc or not live:
                live.append(a.alloc(size))
            else:
                a.free(live.pop(size % len(live)))
            a.check_invariants()
        for offset in live:
            a.free(offset)
        a.check_invariants()
        assert a.used_slots == 0
