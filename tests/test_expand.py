"""Tests for the SYN1/SYN2 table expansions."""

from repro.data.expand import expand_syn1, expand_syn2
from repro.net.prefix import Prefix
from repro.net.rib import Rib


def rib_of(*routes):
    rib = Rib()
    for text, hop in routes:
        rib.insert(Prefix.parse(text), hop)
    return rib


class TestSyn1:
    def test_short_prefix_splits_four_ways(self):
        rib = rib_of(("10.0.0.0/16", 5))
        out = expand_syn1(rib, fraction=1.0)
        routes = list(out.routes())
        assert len(routes) == 4
        assert all(p.length == 18 for p, _ in routes)

    def test_medium_prefix_splits_two_ways(self):
        rib = rib_of(("10.0.0.0/20", 5))
        out = expand_syn1(rib, fraction=1.0)
        assert [p.length for p, _ in out.routes()] == [21, 21]

    def test_slash24_not_deepened(self):
        rib = rib_of(("10.0.0.0/24", 5))
        out = expand_syn1(rib, fraction=1.0)
        assert all(p.length <= 24 for p, _ in out.routes())

    def test_igp_routes_pass_through(self):
        rib = rib_of(("10.0.0.1/32", 5))
        out = expand_syn1(rib, fraction=1.0)
        assert list(out.routes()) == [(Prefix.parse("10.0.0.1/32"), 5)]

    def test_fraction_zero_is_identity(self):
        rib = rib_of(("10.0.0.0/16", 5), ("10.1.0.0/20", 6))
        out = expand_syn1(rib, fraction=0.0)
        assert list(out.routes()) == list(rib.routes())

    def test_systematic_nexthop_striding(self):
        rib = rib_of(("10.0.0.0/16", 2), ("192.0.2.0/24", 7))
        out = expand_syn1(rib, fraction=1.0)
        stride = 7  # the original table's max next hop
        hops = sorted(hop for p, hop in out.routes() if p.length == 18)
        assert hops == [2, 2 + stride, 2 + 2 * stride, 2 + 3 * stride]

    def test_split_pieces_never_displace_originals(self):
        # The /24 is not split by SYN1; the /16's pieces must not touch it.
        rib = rib_of(("10.0.0.0/16", 2), ("10.0.0.0/24", 9))
        out = expand_syn1(rib, fraction=1.0)
        assert out.get(Prefix.parse("10.0.0.0/24")) == 9

    def test_colliding_pieces_are_skipped(self):
        # /16 → four /18 pieces, /17 → two /18 pieces that land on taken
        # slots and are skipped: 4 + 0 routes at /18.
        rib = rib_of(("10.0.0.0/16", 2), ("10.0.0.0/17", 3))
        out = expand_syn1(rib, fraction=1.0)
        assert sum(1 for p, _ in out.routes() if p.length == 18) == 4

    def test_deterministic(self):
        rib = rib_of(*((f"10.{i}.0.0/16", i + 1) for i in range(50)))
        assert list(expand_syn1(rib).routes()) == list(expand_syn1(rib).routes())


class TestSyn2:
    def test_short_prefix_splits_eight_ways(self):
        rib = rib_of(("10.0.0.0/16", 5))
        out = expand_syn2(rib, fraction=1.0)
        assert [p.length for p, _ in out.routes()] == [19] * 8

    def test_17_to_20_splits_four_ways(self):
        rib = rib_of(("10.0.0.0/18", 5))
        out = expand_syn2(rib, fraction=1.0)
        assert [p.length for p, _ in out.routes()] == [20] * 4

    def test_slash24_becomes_25s(self):
        """The split that breaks SAIL and unmodified DXR (Section 4.8)."""
        rib = rib_of(("10.0.0.0/24", 5))
        out = expand_syn2(rib, fraction=1.0)
        assert [p.length for p, _ in out.routes()] == [25, 25]

    def test_splits_cap_at_address_width(self):
        rib = Rib()
        rib.insert(Prefix.parse("10.0.0.0/16"), 1)
        out = expand_syn2(rib, fraction=1.0)
        assert all(p.length <= 32 for p, _ in out.routes())

    def test_larger_than_syn1(self):
        rib = rib_of(*((f"10.{i}.0.0/16", i + 1) for i in range(64)))
        assert len(expand_syn2(rib, fraction=1.0)) > len(
            expand_syn1(rib, fraction=1.0)
        )


class TestSemantics:
    def test_coverage_is_preserved(self):
        """Splitting changes next hops but never uncovers addresses."""
        from repro.net.fib import NO_ROUTE
        import random

        rib = rib_of(("10.0.0.0/16", 1), ("10.0.128.0/17", 2), ("11.0.0.0/8", 3))
        out = expand_syn2(rib, fraction=1.0)
        rng = random.Random(5)
        for _ in range(2000):
            address = rng.getrandbits(32)
            assert (rib.lookup(address) == NO_ROUTE) == (
                out.lookup(address) == NO_ROUTE
            )
