"""Tests for route aggregation (paper's option + ORTC extension)."""

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import make_random_rib, naive_lpm

from repro.core.aggregate import (
    aggregate_ortc,
    aggregate_simple,
    aggregate_uniform,
    aggregated_rib,
)
from repro.net.prefix import Prefix
from repro.net.rib import Rib, rib_from_routes
from repro.net.values import NO_ROUTE, ValueTable


def rib_of(*routes, width=32):
    rib = Rib(width=width)
    for text, hop in routes:
        rib.insert(Prefix.parse(text), hop)
    return rib


class TestSimpleAggregation:
    def test_sibling_merge(self):
        """The paper's core case: two siblings with one next hop merge."""
        rib = rib_of(("10.0.0.0/9", 1), ("10.128.0.0/9", 1))
        routes = aggregate_simple(rib)
        assert routes == [(Prefix.parse("10.0.0.0/8"), 1)]

    def test_redundant_child_removed(self):
        rib = rib_of(("10.0.0.0/8", 1), ("10.1.0.0/16", 1))
        routes = aggregate_simple(rib)
        assert routes == [(Prefix.parse("10.0.0.0/8"), 1)]

    def test_distinct_nexthops_not_merged(self):
        rib = rib_of(("10.0.0.0/9", 1), ("10.128.0.0/9", 2))
        assert len(aggregate_simple(rib)) == 2

    def test_gap_prevents_merge(self):
        # 10.0/9 alone cannot become 10/8: half the space is uncovered.
        rib = rib_of(("10.0.0.0/9", 1))
        routes = aggregate_simple(rib)
        assert routes == [(Prefix.parse("10.0.0.0/9"), 1)]

    def test_recursive_merge(self):
        rib = rib_of(
            ("10.0.0.0/10", 1),
            ("10.64.0.0/10", 1),
            ("10.128.0.0/10", 1),
            ("10.192.0.0/10", 1),
        )
        assert aggregate_simple(rib) == [(Prefix.parse("10.0.0.0/8"), 1)]

    def test_hole_punching_preserved(self):
        rib = rib_of(("10.0.0.0/8", 1), ("10.1.0.0/16", 2))
        out = rib_from_routes(aggregate_simple(rib))
        assert out.lookup(Prefix.parse("10.1.2.3/32").value) == 2
        assert out.lookup(Prefix.parse("10.2.0.0/32").value) == 1

    def test_empty_table(self):
        assert aggregate_simple(Rib()) == []

    def test_aggregated_rib_helper(self):
        rib = rib_of(("10.0.0.0/9", 1), ("10.128.0.0/9", 1))
        assert len(aggregated_rib(rib)) == 1

    def test_never_invents_coverage(self):
        """Addresses the input did not cover must stay uncovered."""
        rib = rib_of(("10.0.0.0/8", 1))
        out = rib_from_routes(aggregate_simple(rib))
        assert out.lookup(Prefix.parse("11.0.0.1/32").value) == NO_ROUTE

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_exactness_exhaustive(self, seed):
        """Invariant 2: aggregation preserves every lookup result."""
        rib = make_random_rib(40, seed=seed, width=10, max_nexthop=4)
        out = rib_from_routes(aggregate_simple(rib), width=10)
        for address in range(1 << 10):
            assert out.lookup(address) == rib.lookup(address)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_never_grows_table(self, seed):
        rib = make_random_rib(50, seed=seed, width=12, max_nexthop=3)
        assert len(aggregate_simple(rib)) <= len(rib)

    def test_idempotent(self, bgp_rib):
        once = aggregated_rib(bgp_rib)
        twice = aggregated_rib(once)
        assert sorted(p.text for p, _ in once.routes()) == sorted(
            p.text for p, _ in twice.routes()
        )


class TestUniformAggregation:
    """The swoiow same-value subtree pruning (docs/VALUES.md)."""

    def test_span_one_is_simple(self):
        rib = rib_of(("10.0.0.0/9", 1), ("10.128.0.0/9", 1),
                     ("20.0.0.0/8", 2), ("20.1.0.0/16", 2))
        assert aggregate_uniform(rib, span=1) == aggregate_simple(rib)

    def test_merge_lands_on_stride_boundary(self):
        # Four /10s collapse to a /8 — an 8-aligned depth, so span=8
        # accepts the merge even though /9 and /10 would not be emitted.
        rib = rib_of(
            ("10.0.0.0/10", 1),
            ("10.64.0.0/10", 1),
            ("10.128.0.0/10", 1),
            ("10.192.0.0/10", 1),
        )
        assert aggregate_uniform(rib, span=8) == [
            (Prefix.parse("10.0.0.0/8"), 1)
        ]

    def test_unaligned_merge_descends_exactly(self):
        # Two /9s merge to a /8... but with span=6 a /8 is not on a
        # stride boundary, so the walk descends and re-emits at /12
        # (the next multiple of 6 is unreachable without splitting; the
        # leaves themselves are emitted).  Whatever the shape, the
        # result must stay exact.
        rib = rib_of(("10.0.0.0/9", 1), ("10.128.0.0/9", 1))
        out = rib_from_routes(aggregate_uniform(rib, span=6))
        for text in ("10.0.0.1/32", "10.200.0.1/32", "11.0.0.1/32"):
            key = Prefix.parse(text).value
            assert out.lookup(key) == rib.lookup(key)

    def test_span_validation(self):
        with pytest.raises(ValueError):
            aggregate_uniform(Rib(), span=0)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        span=st.sampled_from([1, 2, 3, 6, 8]),
    )
    def test_exactness_every_span(self, seed, span):
        """Every span produces an equivalent table (Invariant 2)."""
        rib = make_random_rib(40, seed=seed, width=10, max_nexthop=4)
        out = rib_from_routes(aggregate_uniform(rib, span=span), width=10)
        for address in range(1 << 10):
            assert out.lookup(address) == rib.lookup(address)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_wider_span_never_beats_simple(self, seed):
        """Stride alignment can only restrict merges, never add them."""
        rib = make_random_rib(50, seed=seed, width=12, max_nexthop=3)
        assert len(aggregate_simple(rib)) <= len(aggregate_uniform(rib, 6))

    def test_aggregated_rib_span_and_values_carry_over(self):
        values = ValueTable("cc")
        rib = Rib(values=values)
        cn = values.intern("CN")
        for text in ("10.0.0.0/10", "10.64.0.0/10",
                     "10.128.0.0/10", "10.192.0.0/10"):
            rib.insert(Prefix.parse(text), cn)
        out = aggregated_rib(rib, span=8)
        assert len(out) == 1
        assert out.values is values


class TestValuePayloads:
    """Aggregation is value-agnostic: ids need not be small next hops."""

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        id_pool=st.lists(
            st.integers(min_value=1, max_value=2**32 - 1),
            min_size=1, max_size=4, unique=True,
        ),
    )
    def test_simple_exact_under_u32_ids(self, seed, id_pool):
        """Full u16/u32 id range: aggregation never renumbers or mixes."""
        import random as _random

        rng = _random.Random(seed)
        base = make_random_rib(40, seed=seed, width=10, max_nexthop=4)
        rib = Rib(width=10)
        for prefix, _ in base.routes():
            rib.insert(prefix, rng.choice(id_pool))
        out = rib_from_routes(aggregate_simple(rib), width=10)
        for address in range(1 << 10):
            assert out.lookup(address) == rib.lookup(address)

    def test_emitted_ids_are_input_ids(self):
        rib = rib_of(("10.0.0.0/9", 60_000), ("10.128.0.0/9", 60_000),
                     ("20.0.0.0/8", 2**31))
        for _, value in aggregate_simple(rib):
            assert value in (60_000, 2**31)


class TestOrtc:
    def test_classic_example(self):
        # Two /9s with hops 1,2 plus default 1: ORTC needs only 2 routes.
        rib = rib_of(("0.0.0.0/0", 1), ("10.128.0.0/9", 2))
        routes = aggregate_ortc(rib)
        assert len(routes) <= 2

    def test_semantics_preserved_where_covered(self):
        rib = rib_of(("10.0.0.0/8", 1), ("10.1.0.0/16", 2), ("11.0.0.0/8", 1))
        out = rib_from_routes(aggregate_ortc(rib))
        for text in ("10.0.0.1/32", "10.1.2.3/32", "11.9.9.9/32"):
            key = Prefix.parse(text).value
            assert out.lookup(key) == rib.lookup(key)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_exact_on_covered_space(self, seed):
        """ORTC preserves results wherever the original table matched."""
        rib = make_random_rib(30, seed=seed, width=10, max_nexthop=4)
        out = rib_from_routes(aggregate_ortc(rib), width=10)
        for address in range(1 << 10):
            original = rib.lookup(address)
            if original != NO_ROUTE:
                assert out.lookup(address) == original

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_at_most_simple_size(self, seed):
        """ORTC is optimal, so never larger than the simple aggregation."""
        rib = make_random_rib(40, seed=seed, width=10, max_nexthop=4)
        assert len(aggregate_ortc(rib)) <= len(aggregate_simple(rib))

    def test_on_full_cover_collapses_to_default(self):
        rib = rib_of(("0.0.0.0/1", 5), ("128.0.0.0/1", 5))
        routes = aggregate_ortc(rib)
        assert routes == [(Prefix.parse("0.0.0.0/0"), 5)]

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=100_000),
        id_pool=st.lists(
            st.integers(min_value=1, max_value=2**32 - 1),
            min_size=1, max_size=4, unique=True,
        ),
    )
    def test_default_route_contract_under_value_ids(self, seed, id_pool):
        """The pinned ORTC contract, restated for arbitrary value ids.

        ORTC may cover previously-unmatched addresses (typically via a
        synthesised default route), but any id it assigns anywhere —
        covered space or not — must be an id the input table used.  For
        a value plane that means ORTC can never invent a dangling
        side-table reference.
        """
        import random as _random

        rng = _random.Random(seed)
        base = make_random_rib(30, seed=seed, width=10, max_nexthop=4)
        rib = Rib(width=10)
        for prefix, _ in base.routes():
            rib.insert(prefix, rng.choice(id_pool))
        routes = aggregate_ortc(rib)
        used = set(id_pool)
        assert {value for _, value in routes} <= used
        out = rib_from_routes(routes, width=10)
        for address in range(1 << 10):
            original = rib.lookup(address)
            result = out.lookup(address)
            if original != NO_ROUTE:
                assert result == original
            else:
                assert result == NO_ROUTE or result in used


class TestAggregationHelpsPoptrie:
    def test_reduces_poptrie_size(self, bgp_rib):
        """Table 2's bottom block: aggregation shrinks the structure."""
        from repro.core.poptrie import Poptrie, PoptrieConfig

        raw = Poptrie.from_rib(bgp_rib, PoptrieConfig(s=16))
        agg = Poptrie.from_rib(aggregated_rib(bgp_rib), PoptrieConfig(s=16))
        assert agg.memory_bytes() <= raw.memory_bytes()
