"""Tests for route aggregation (paper's option + ORTC extension)."""

import pytest
from hypothesis import given, settings, strategies as st

from tests.conftest import make_random_rib, naive_lpm

from repro.core.aggregate import (
    aggregate_ortc,
    aggregate_simple,
    aggregated_rib,
)
from repro.net.fib import NO_ROUTE
from repro.net.prefix import Prefix
from repro.net.rib import Rib, rib_from_routes


def rib_of(*routes, width=32):
    rib = Rib(width=width)
    for text, hop in routes:
        rib.insert(Prefix.parse(text), hop)
    return rib


class TestSimpleAggregation:
    def test_sibling_merge(self):
        """The paper's core case: two siblings with one next hop merge."""
        rib = rib_of(("10.0.0.0/9", 1), ("10.128.0.0/9", 1))
        routes = aggregate_simple(rib)
        assert routes == [(Prefix.parse("10.0.0.0/8"), 1)]

    def test_redundant_child_removed(self):
        rib = rib_of(("10.0.0.0/8", 1), ("10.1.0.0/16", 1))
        routes = aggregate_simple(rib)
        assert routes == [(Prefix.parse("10.0.0.0/8"), 1)]

    def test_distinct_nexthops_not_merged(self):
        rib = rib_of(("10.0.0.0/9", 1), ("10.128.0.0/9", 2))
        assert len(aggregate_simple(rib)) == 2

    def test_gap_prevents_merge(self):
        # 10.0/9 alone cannot become 10/8: half the space is uncovered.
        rib = rib_of(("10.0.0.0/9", 1))
        routes = aggregate_simple(rib)
        assert routes == [(Prefix.parse("10.0.0.0/9"), 1)]

    def test_recursive_merge(self):
        rib = rib_of(
            ("10.0.0.0/10", 1),
            ("10.64.0.0/10", 1),
            ("10.128.0.0/10", 1),
            ("10.192.0.0/10", 1),
        )
        assert aggregate_simple(rib) == [(Prefix.parse("10.0.0.0/8"), 1)]

    def test_hole_punching_preserved(self):
        rib = rib_of(("10.0.0.0/8", 1), ("10.1.0.0/16", 2))
        out = rib_from_routes(aggregate_simple(rib))
        assert out.lookup(Prefix.parse("10.1.2.3/32").value) == 2
        assert out.lookup(Prefix.parse("10.2.0.0/32").value) == 1

    def test_empty_table(self):
        assert aggregate_simple(Rib()) == []

    def test_aggregated_rib_helper(self):
        rib = rib_of(("10.0.0.0/9", 1), ("10.128.0.0/9", 1))
        assert len(aggregated_rib(rib)) == 1

    def test_never_invents_coverage(self):
        """Addresses the input did not cover must stay uncovered."""
        rib = rib_of(("10.0.0.0/8", 1))
        out = rib_from_routes(aggregate_simple(rib))
        assert out.lookup(Prefix.parse("11.0.0.1/32").value) == NO_ROUTE

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_exactness_exhaustive(self, seed):
        """Invariant 2: aggregation preserves every lookup result."""
        rib = make_random_rib(40, seed=seed, width=10, max_nexthop=4)
        out = rib_from_routes(aggregate_simple(rib), width=10)
        for address in range(1 << 10):
            assert out.lookup(address) == rib.lookup(address)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_never_grows_table(self, seed):
        rib = make_random_rib(50, seed=seed, width=12, max_nexthop=3)
        assert len(aggregate_simple(rib)) <= len(rib)

    def test_idempotent(self, bgp_rib):
        once = aggregated_rib(bgp_rib)
        twice = aggregated_rib(once)
        assert sorted(p.text for p, _ in once.routes()) == sorted(
            p.text for p, _ in twice.routes()
        )


class TestOrtc:
    def test_classic_example(self):
        # Two /9s with hops 1,2 plus default 1: ORTC needs only 2 routes.
        rib = rib_of(("0.0.0.0/0", 1), ("10.128.0.0/9", 2))
        routes = aggregate_ortc(rib)
        assert len(routes) <= 2

    def test_semantics_preserved_where_covered(self):
        rib = rib_of(("10.0.0.0/8", 1), ("10.1.0.0/16", 2), ("11.0.0.0/8", 1))
        out = rib_from_routes(aggregate_ortc(rib))
        for text in ("10.0.0.1/32", "10.1.2.3/32", "11.9.9.9/32"):
            key = Prefix.parse(text).value
            assert out.lookup(key) == rib.lookup(key)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_exact_on_covered_space(self, seed):
        """ORTC preserves results wherever the original table matched."""
        rib = make_random_rib(30, seed=seed, width=10, max_nexthop=4)
        out = rib_from_routes(aggregate_ortc(rib), width=10)
        for address in range(1 << 10):
            original = rib.lookup(address)
            if original != NO_ROUTE:
                assert out.lookup(address) == original

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100_000))
    def test_at_most_simple_size(self, seed):
        """ORTC is optimal, so never larger than the simple aggregation."""
        rib = make_random_rib(40, seed=seed, width=10, max_nexthop=4)
        assert len(aggregate_ortc(rib)) <= len(aggregate_simple(rib))

    def test_on_full_cover_collapses_to_default(self):
        rib = rib_of(("0.0.0.0/1", 5), ("128.0.0.0/1", 5))
        routes = aggregate_ortc(rib)
        assert routes == [(Prefix.parse("0.0.0.0/0"), 5)]


class TestAggregationHelpsPoptrie:
    def test_reduces_poptrie_size(self, bgp_rib):
        """Table 2's bottom block: aggregation shrinks the structure."""
        from repro.core.poptrie import Poptrie, PoptrieConfig

        raw = Poptrie.from_rib(bgp_rib, PoptrieConfig(s=16))
        agg = Poptrie.from_rib(aggregated_rib(bgp_rib), PoptrieConfig(s=16))
        assert agg.memory_bytes() <= raw.memory_bytes()
