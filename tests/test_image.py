"""The zero-copy ``TableImage`` API (repro.parallel.image).

Three properties under test:

- **Format robustness** — ``TableImage.open`` rejects every corruption
  we can synthesize (bad magic, truncation, CRC flips, bad version,
  malformed segment tables) with :class:`SnapshotFormatError`, never a
  wrong-but-plausible structure.
- **Registry-wide round-trip** — every ``supports_image`` entry in the
  algorithm registry survives ``to_image → bytes → open → from_image``
  with a fingerprint-identical image and ``lookup_batch`` agreement on a
  random key sweep, for both ``copy=True`` (persistence) and
  ``copy=False`` (the data plane's zero-copy attach).
- **Back compatibility** — legacy ``POPTRIE1`` blobs still load through
  the blessed :func:`structure_from_bytes` entry point.
"""

from __future__ import annotations

import io
import json
import struct

import numpy as np
import pytest

from tests.conftest import make_random_rib

from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.core.serialize import MAGIC as LEGACY_MAGIC
from repro.core.serialize import _dump_bytes_v1
from repro.errors import SnapshotFormatError
from repro.lookup import registry
from repro.parallel.image import (
    MAGIC,
    TableImage,
    image_to_structure,
    load_structure,
    save_structure,
    sniff_magic,
    structure_from_bytes,
    structure_to_bytes,
)

RIB = make_random_rib(600, seed=411)
KEYS = np.random.default_rng(19).integers(0, 1 << 32, size=4096, dtype=np.uint64)


def _image_roster():
    """name → built structure, for every image-capable registry entry."""
    names = [
        name for name in registry.available()
        if registry.get(name).supports_image
    ]
    roster = registry.standard_roster(RIB, names)
    return {name: s for name, s in roster.items() if s is not None}


ROSTER = _image_roster()


def _sample_image() -> TableImage:
    trie = Poptrie.from_rib(RIB, PoptrieConfig(s=16))
    return trie.to_image()


class TestFormat:
    def test_magic_and_sniff(self):
        blob = _sample_image().to_bytes()
        assert blob[:8] == MAGIC == b"RPIMG001"
        assert sniff_magic(blob) == "image"
        assert sniff_magic(LEGACY_MAGIC + b"x" * 8) == "legacy"
        assert sniff_magic(b"not a snapshot") is None

    def test_deterministic_bytes_and_fingerprint(self):
        first, second = _sample_image(), _sample_image()
        assert first.to_bytes() == second.to_bytes()
        assert first.fingerprint() == second.fingerprint()

    def test_open_tolerates_trailing_slack(self):
        # Shared-memory segments are page-rounded; the recorded nbytes,
        # not the buffer length, bounds the image.
        blob = _sample_image().to_bytes()
        image = TableImage.open(blob + b"\0" * 4096)
        assert image.nbytes == len(blob)

    def test_bad_magic_rejected(self):
        blob = bytearray(_sample_image().to_bytes())
        blob[:8] = b"RPIMG999"
        with pytest.raises(SnapshotFormatError, match="magic"):
            TableImage.open(bytes(blob))

    @pytest.mark.parametrize("keep", [0, 4, 15, 40])
    def test_truncation_rejected(self, keep):
        blob = _sample_image().to_bytes()
        with pytest.raises(SnapshotFormatError, match="truncated"):
            TableImage.open(blob[:keep])

    def test_crc_flip_rejected_everywhere(self):
        blob = _sample_image().to_bytes()
        # Flip one bit in the header region, one mid-segment, one in the
        # stored CRC itself: every flip must be caught.
        for offset in (20, len(blob) // 2, len(blob) - 2):
            mangled = bytearray(blob)
            mangled[offset] ^= 0x40
            with pytest.raises(SnapshotFormatError):
                TableImage.open(bytes(mangled))

    def test_unverified_open_skips_crc(self):
        blob = bytearray(_sample_image().to_bytes())
        blob[-2] ^= 0x40  # corrupt the stored CRC only
        image = TableImage.open(bytes(blob), verify=False)
        assert image.kind == "structure"

    def test_bad_format_version_rejected(self):
        blob = _rewrite_header(
            _sample_image().to_bytes(), lambda h: h.update(format=99)
        )
        with pytest.raises(SnapshotFormatError, match="version"):
            TableImage.open(blob, verify=False)

    def test_segment_overflow_rejected(self):
        def stretch(header):
            header["segments"][0]["count"] *= 1000
            header["segments"][0]["nbytes"] *= 1000

        blob = _rewrite_header(_sample_image().to_bytes(), stretch)
        with pytest.raises(SnapshotFormatError, match="overflows"):
            TableImage.open(blob, verify=False)

    def test_missing_segment_is_snapshot_error(self):
        image = _sample_image()
        with pytest.raises(SnapshotFormatError, match="no segment"):
            image.segment("definitely-not-a-segment")

    def test_segments_are_read_only_views(self):
        image = TableImage.open(_sample_image().to_bytes())
        name = image.segment_names()[0]
        with pytest.raises(ValueError):
            image.segment(name)[0] = 1


class TestValueSegments:
    """The value-plane extension of the format (docs/VALUES.md).

    Value side-tables travel as ``values/``-prefixed segments plus one
    ``values`` meta key.  Pre-value-plane images have neither, so they
    must keep loading — with the identity plane (``values is None``,
    ``lookup_value`` returns raw ids) — and half-present combinations
    are corruption, not silently-empty tables.
    """

    def _valued_structure(self):
        from repro.net.prefix import Prefix
        from repro.net.rib import Rib
        from repro.net.values import ValueTable

        values = ValueTable("cc")
        rib = Rib(values=values)
        rib.insert(Prefix.parse("10.0.0.0/8"), values.intern("CN"))
        rib.insert(Prefix.parse("10.1.0.0/16"), values.intern("JP"))
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        trie.attach_values(values)
        return trie

    def test_pre_value_plane_image_loads_identity(self):
        """The old format *is* the no-values encoding: byte-identical
        to a seed-era image, and it loads with the identity plane."""
        image = _sample_image()
        assert "values" not in image.meta
        assert not any(
            n.startswith("values/") for n in image.segment_names()
        )
        rebuilt = Poptrie.from_image(TableImage.open(image.to_bytes()))
        assert rebuilt.values is None
        key = int(next(iter(RIB.routes()))[0].value)
        assert rebuilt.lookup_value(key) == rebuilt.lookup(key)

    def test_valued_image_round_trips_via_bytes(self):
        trie = self._valued_structure()
        blob = trie.to_image().to_bytes()
        rebuilt = Poptrie.from_image(TableImage.open(blob))
        assert rebuilt.values == trie.values
        assert rebuilt.to_image().fingerprint() == trie.to_image().fingerprint()

    def test_value_segments_without_meta_rejected(self):
        blob = _rewrite_meta(
            self._valued_structure().to_image().to_bytes(),
            lambda h: h["meta"].pop("values"),
        )
        with pytest.raises(SnapshotFormatError, match="values"):
            Poptrie.from_image(TableImage.open(blob, verify=False))

    def test_value_count_mismatch_rejected(self):
        def lie(header):
            header["meta"]["values"]["count"] = 9

        blob = _rewrite_meta(
            self._valued_structure().to_image().to_bytes(), lie
        )
        with pytest.raises(SnapshotFormatError, match="declares 9"):
            Poptrie.from_image(TableImage.open(blob, verify=False))

    def test_unknown_value_kind_rejected(self):
        def lie(header):
            header["meta"]["values"]["kind"] = "zz"

        blob = _rewrite_meta(
            self._valued_structure().to_image().to_bytes(), lie
        )
        with pytest.raises(SnapshotFormatError, match="zz"):
            Poptrie.from_image(TableImage.open(blob, verify=False))


def _rewrite_meta(blob: bytes, mutate) -> bytes:
    """Like :func:`_rewrite_header` but length-preserving (CRC not fixed).

    Value-plane rejection fires *after* segment decoding starts, so the
    recorded absolute segment offsets must stay valid: the mutated JSON
    is space-padded back to the original header length (mutations may
    only shrink or keep the encoding's size).
    """
    preamble = struct.Struct("<8sII")
    magic, hlen, reserved = preamble.unpack_from(blob, 0)
    header = json.loads(blob[preamble.size : preamble.size + hlen])
    mutate(header)
    encoded = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode()
    assert len(encoded) <= hlen, "mutation grew the header"
    return (
        blob[: preamble.size]
        + encoded.ljust(hlen, b" ")
        + blob[preamble.size + hlen :]
    )


def _rewrite_header(blob: bytes, mutate) -> bytes:
    """Re-emit ``blob`` with a mutated JSON header (CRC not fixed up).

    The rewritten header may change length; both callers expect a
    rejection that fires before segment payloads are decoded, so the
    resulting offset skew is irrelevant.
    """
    preamble = struct.Struct("<8sII")
    magic, hlen, reserved = preamble.unpack_from(blob, 0)
    header = json.loads(blob[preamble.size : preamble.size + hlen])
    mutate(header)
    encoded = json.dumps(
        header, sort_keys=True, separators=(",", ":")
    ).encode()
    return (
        preamble.pack(magic, len(encoded), reserved)
        + encoded
        + blob[preamble.size + hlen :]
    )


class TestRegistryRoundTrip:
    """Satellite: every ``supports_image`` entry round-trips exactly."""

    def test_expected_roster(self):
        assert set(ROSTER) == {
            "D18R", "D16R", "SAIL", "DIR-24-8",
            "Poptrie0", "Poptrie16", "Poptrie18",
        }

    @pytest.mark.parametrize("name", sorted(ROSTER))
    def test_fingerprint_identical_after_round_trip(self, name):
        original = ROSTER[name]
        reopened = TableImage.open(original.to_image().to_bytes())
        rebuilt = image_to_structure(reopened)
        assert rebuilt.to_image().fingerprint() == reopened.fingerprint()

    @pytest.mark.parametrize("copy", [True, False])
    @pytest.mark.parametrize("name", sorted(ROSTER))
    def test_lookup_agreement_on_random_sweep(self, name, copy):
        original = ROSTER[name]
        rebuilt = structure_from_bytes(
            structure_to_bytes(original), copy=copy
        )
        np.testing.assert_array_equal(
            rebuilt.lookup_batch(KEYS), original.lookup_batch(KEYS)
        )

    def test_zero_copy_structures_share_the_blob(self):
        blob = structure_to_bytes(ROSTER["Poptrie18"])
        attached = structure_from_bytes(blob, copy=False)
        # A zero-copy attach allocates no private copies of the big
        # arrays; the reported memory should not double when we attach
        # a second time to the same buffer.
        again = structure_from_bytes(blob, copy=False)
        np.testing.assert_array_equal(
            attached.lookup_batch(KEYS[:256]), again.lookup_batch(KEYS[:256])
        )

    def test_unsupported_structures_raise_type_error(self):
        unsupported = [
            name for name in registry.available()
            if not registry.get(name).supports_image
        ]
        assert unsupported, "expected at least one pointer-chasing baseline"
        structure = registry.standard_roster(RIB, unsupported[:1])[
            unsupported[0]
        ]
        with pytest.raises(TypeError, match="does not support table images"):
            structure.to_image()


class TestPersistenceSurface:
    def test_save_load_path_round_trip(self, tmp_path):
        trie = ROSTER["Poptrie18"]
        path = str(tmp_path / "table.img")
        written = save_structure(trie, path)
        assert written == len(structure_to_bytes(trie))
        loaded = load_structure(path)
        np.testing.assert_array_equal(
            loaded.lookup_batch(KEYS), trie.lookup_batch(KEYS)
        )

    def test_save_load_stream_round_trip(self):
        trie = ROSTER["Poptrie16"]
        buffer = io.BytesIO()
        save_structure(trie, buffer)
        buffer.seek(0)
        loaded = load_structure(buffer)
        np.testing.assert_array_equal(
            loaded.lookup_batch(KEYS), trie.lookup_batch(KEYS)
        )

    def test_legacy_poptrie1_blob_still_loads(self):
        trie = Poptrie.from_rib(RIB, PoptrieConfig(s=16))
        blob = _dump_bytes_v1(trie)
        assert blob[:8] == LEGACY_MAGIC
        loaded = structure_from_bytes(blob)
        np.testing.assert_array_equal(
            loaded.lookup_batch(KEYS), trie.lookup_batch(KEYS)
        )

    def test_garbage_blob_rejected(self):
        with pytest.raises(SnapshotFormatError, match="bad magic"):
            structure_from_bytes(b"certainly not a table snapshot")
