"""Tests for the synthetic table generator."""

from collections import Counter

from repro.data.synth import (
    BGP_LENGTH_WEIGHTS,
    generate_table,
    generate_table_v6,
)
from repro.net.prefix import Prefix


class TestDeterminism:
    def test_same_seed_same_table(self):
        a, _ = generate_table(500, 20, seed=42)
        b, _ = generate_table(500, 20, seed=42)
        assert list(a.routes()) == list(b.routes())

    def test_different_seed_different_table(self):
        a, _ = generate_table(500, 20, seed=42)
        b, _ = generate_table(500, 20, seed=43)
        assert list(a.routes()) != list(b.routes())


class TestShape:
    def test_route_count(self):
        rib, _ = generate_table(2000, 50, seed=1)
        assert len(rib) == 2000

    def test_fib_size(self):
        _, fib = generate_table(500, 37, seed=1)
        assert len(fib) == 37

    def test_nexthops_in_range(self):
        rib, _ = generate_table(1000, 16, seed=2)
        assert all(1 <= hop <= 16 for _, hop in rib.routes())

    def test_length_mix_peaks_at_24(self):
        rib, _ = generate_table(5000, 30, seed=3)
        lengths = Counter(p.length for p, _ in rib.routes())
        assert lengths[24] == max(lengths.values())
        # No IGP routes unless requested.
        assert all(length <= 24 for length in lengths)

    def test_igp_fraction_adds_long_prefixes(self):
        rib, _ = generate_table(3000, 30, seed=4, igp_fraction=0.2)
        long_count = sum(1 for p, _ in rib.routes() if p.length > 24)
        assert 0.1 * len(rib) < long_count < 0.35 * len(rib)

    def test_igp_routes_cluster(self):
        rib, _ = generate_table(3000, 30, seed=5, igp_fraction=0.2)
        igp_16s = {p.value >> 16 for p, _ in rib.routes() if p.length > 24}
        # IGP space is a handful of internal blocks, not scattered.
        assert len(igp_16s) < 200

    def test_nexthop_locality(self):
        """Routes inside one /16 should mostly share a next hop — the
        property leafvec compression and DXR range merging rely on."""
        rib, _ = generate_table(4000, 50, seed=6)
        by_chunk = {}
        for prefix, hop in rib.routes():
            if prefix.length >= 16:
                by_chunk.setdefault(prefix.value >> 16, []).append(hop)
        dominated = 0
        multi = 0
        for hops in by_chunk.values():
            if len(hops) >= 4:
                multi += 1
                top = Counter(hops).most_common(1)[0][1]
                if top / len(hops) >= 0.6:
                    dominated += 1
        assert multi > 0
        assert dominated / multi > 0.5

    def test_hole_punching_present(self):
        """Some addresses must need deeper searches than their match —
        the Figure 7 phenomenon."""
        rib, _ = generate_table(4000, 30, seed=7)
        deeper = 0
        import random

        rng = random.Random(1)
        for _ in range(2000):
            address = rng.getrandbits(32)
            _, matched, depth = rib.lookup_with_depth(address)
            if depth > matched:
                deeper += 1
        assert deeper > 50


class TestIPv6:
    def test_prefixes_inside_2000_8(self):
        rib, _ = generate_table_v6(300, 13, seed=8)
        for prefix, _ in rib.routes():
            assert prefix.value >> 120 == 0x20

    def test_lengths_in_v6_mix(self):
        rib, _ = generate_table_v6(500, 13, seed=9)
        lengths = Counter(p.length for p, _ in rib.routes())
        assert lengths[48] > 0 and lengths[32] > 0
        assert max(lengths) <= 64

    def test_deterministic(self):
        a, _ = generate_table_v6(200, 13, seed=10)
        b, _ = generate_table_v6(200, 13, seed=10)
        assert list(a.routes()) == list(b.routes())


class TestWeights:
    def test_bgp_weights_are_normalisable(self):
        total = sum(BGP_LENGTH_WEIGHTS.values())
        assert 0.9 < total < 1.1
