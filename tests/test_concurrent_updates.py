"""Concurrent reader stress test for the lock-free update protocol.

The paper's Section 3.5 requirement: readers must never be blocked and
must never observe a half-built structure.  CPython's GIL interleaves
the reader and writer at bytecode granularity, which is exactly the
adversarial schedule we want: if the updater ever published a pointer
before the block behind it was fully written — or freed a block before
unlinking it — the reader would crash (index error) or return a value
that was never a legal answer.

The reader validates every result against the set of answers that are
legal at *some* point of the run (values are monotonic per-key between
the old and new table states around each update).
"""

import random
import threading

import pytest

from repro.core.poptrie import PoptrieConfig
from repro.core.update import UpdatablePoptrie
from repro.errors import InjectedFault
from repro.net.prefix import Prefix
from repro.robust.faults import FaultPlan
from repro.robust.txn import TransactionalPoptrie


@pytest.mark.parametrize("s", [0, 16])
def test_reader_never_sees_torn_state(s):
    up = UpdatablePoptrie(PoptrieConfig(s=s))
    rng = random.Random(77)

    # Seed table.
    live = []
    for _ in range(300):
        length = rng.randint(1, 32)
        prefix = Prefix(rng.getrandbits(length) << (32 - length), length, 32)
        if not up.rib.get(prefix):
            live.append(prefix)
        up.announce(prefix, rng.randint(1, 30))

    #: All FIB indices ever used, plus "no route" — the only legal answers.
    legal = set(range(0, 31))
    errors = []
    stop = threading.Event()

    def reader():
        reader_rng = random.Random(99)
        lookup = up.lookup
        while not stop.is_set():
            key = reader_rng.getrandbits(32)
            try:
                result = lookup(key)
            except Exception as exc:  # index errors = torn structure
                errors.append(f"reader crashed: {exc!r}")
                return
            if result not in legal:
                errors.append(f"illegal result {result} for {key:#x}")
                return

    threads = [threading.Thread(target=reader) for _ in range(2)]
    for thread in threads:
        thread.start()
    try:
        writer_rng = random.Random(5)
        for _ in range(1200):
            if errors:
                break
            if live and writer_rng.random() < 0.45:
                prefix = live.pop(writer_rng.randrange(len(live)))
                up.withdraw(prefix)
            else:
                length = writer_rng.randint(1, 32)
                prefix = Prefix(
                    writer_rng.getrandbits(length) << (32 - length), length, 32
                )
                if not up.rib.get(prefix):
                    live.append(prefix)
                up.announce(prefix, writer_rng.randint(1, 30))
    finally:
        stop.set()
        for thread in threads:
            thread.join()

    assert not errors, errors
    # And after the dust settles, the structure is exactly consistent.
    verify_rng = random.Random(3)
    for _ in range(2000):
        key = verify_rng.getrandbits(32)
        assert up.lookup(key) == up.rib.lookup(key)


@pytest.mark.parametrize("s", [0, 16])
def test_reader_never_sees_aborted_update(s):
    """Readers run while the writer suffers injected faults: an update
    that aborts and rolls back must never be observable from the reader
    thread — same legality check as above, plus rollback-specific
    bookkeeping (the fault sweep in test_robust.py covers the
    single-threaded exactness of each rollback)."""
    up = TransactionalPoptrie(PoptrieConfig(s=s), fallback_rebuild=False)
    rng = random.Random(88)

    live = []
    for _ in range(300):
        length = rng.randint(1, 32)
        prefix = Prefix(rng.getrandbits(length) << (32 - length), length, 32)
        if not up.rib.get(prefix):
            live.append(prefix)
        up.announce(prefix, rng.randint(1, 30))

    legal = set(range(0, 31))
    errors = []
    stop = threading.Event()

    def reader():
        reader_rng = random.Random(101)
        while not stop.is_set():
            key = reader_rng.getrandbits(32)
            try:
                result = up.lookup(key)
            except Exception as exc:  # index errors = torn structure
                errors.append(f"reader crashed: {exc!r}")
                return
            if result not in legal:
                errors.append(f"illegal result {result} for {key:#x}")
                return

    threads = [threading.Thread(target=reader) for _ in range(2)]
    for thread in threads:
        thread.start()
    aborted = 0
    try:
        writer_rng = random.Random(7)
        with FaultPlan(alloc_fail_every=13, build_fail_every=29):
            for _ in range(600):
                if errors:
                    break
                try:
                    if live and writer_rng.random() < 0.45:
                        kind, prefix = "W", live.pop(writer_rng.randrange(len(live)))
                        up.withdraw(prefix)
                    else:
                        length = writer_rng.randint(1, 32)
                        kind, prefix = "A", Prefix(
                            writer_rng.getrandbits(length) << (32 - length),
                            length, 32,
                        )
                        fresh = not up.rib.get(prefix)
                        up.announce(prefix, writer_rng.randint(1, 30))
                        if fresh:
                            live.append(prefix)
                except InjectedFault:
                    aborted += 1
                    if kind == "W":
                        # The rolled-back withdrawal left its prefix live;
                        # re-track it so later withdrawals stay valid.
                        live.append(prefix)
    finally:
        stop.set()
        for thread in threads:
            thread.join()

    assert not errors, errors
    assert aborted > 0, "the plan must actually have aborted some updates"
    assert up.txn_stats.rollbacks == aborted
    # After the dust settles: exact agreement with the shadow RIB, and the
    # full invariant check holds despite the aborted updates.
    verify_rng = random.Random(9)
    for _ in range(2000):
        key = verify_rng.getrandbits(32)
        assert up.lookup(key) == up.rib.lookup(key)
    up.trie.verify(up.rib, samples=1000)
