"""Unit tests for the FIB next-hop table."""

import pytest

from repro.net.values import NO_ROUTE, Fib, NextHop, synthetic_fib


class TestFib:
    def test_no_route_is_zero(self):
        assert NO_ROUTE == 0

    def test_intern_assigns_dense_indices(self):
        fib = Fib()
        a = fib.intern(NextHop("10.0.0.1"))
        b = fib.intern(NextHop("10.0.0.2"))
        assert (a, b) == (1, 2)

    def test_intern_is_idempotent(self):
        fib = Fib()
        a = fib.intern(NextHop("10.0.0.1", 3))
        assert fib.intern(NextHop("10.0.0.1", 3)) == a
        assert len(fib) == 1

    def test_distinct_ports_are_distinct_hops(self):
        fib = Fib()
        a = fib.intern(NextHop("10.0.0.1", 0))
        b = fib.intern(NextHop("10.0.0.1", 1))
        assert a != b

    def test_getitem(self):
        fib = Fib()
        index = fib.intern(NextHop("192.0.2.1", 7))
        assert fib[index] == NextHop("192.0.2.1", 7)

    def test_getitem_rejects_sentinel(self):
        with pytest.raises(KeyError):
            Fib()[NO_ROUTE]

    def test_get_returns_none_for_sentinel(self):
        assert Fib().get(NO_ROUTE) is None

    def test_len_excludes_sentinel(self):
        fib = Fib()
        assert len(fib) == 0
        fib.intern(NextHop("10.0.0.1"))
        assert len(fib) == 1

    def test_iteration_order(self):
        fib = Fib()
        hops = [NextHop(f"10.0.0.{i}") for i in range(1, 5)]
        for hop in hops:
            fib.intern(hop)
        assert list(fib) == hops

    def test_capacity_limit(self):
        fib = Fib(max_entries=2)
        fib.intern(NextHop("10.0.0.1"))
        fib.intern(NextHop("10.0.0.2"))
        with pytest.raises(OverflowError):
            fib.intern(NextHop("10.0.0.3"))


class TestSyntheticFib:
    def test_count(self):
        fib = synthetic_fib(300)
        assert len(fib) == 300

    def test_all_distinct(self):
        fib = synthetic_fib(520)
        assert len({(h.gateway, h.port) for h in fib}) == 520

    def test_indices_are_one_based_and_dense(self):
        fib = synthetic_fib(5)
        for i in range(1, 6):
            assert fib[i] is not None
