"""The shared-memory worker pool (repro.parallel.pool).

What must hold, per docs/PARALLEL.md:

- **Exactness** — ``pool.lookup_batch(keys)`` is bit-for-bit the array
  the source structure returns: sharding and ordered reassembly are
  invisible to callers.
- **Crash safety** — a ``SIGKILL``-ed worker is respawned and its shard
  re-dispatched; the caller still gets the full, correct result.
- **RCU hot swap** — :meth:`WorkerPool.publish` moves every worker to
  the new generation, after which the old segment is unlinked; lookups
  before/after the swap each see a complete table, never a mix.
- **Service integration** — a :class:`PoolView` drops into
  :class:`TableHandle`/:class:`LookupServer` unchanged, including the
  ``OP_RELOAD`` path.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal

import numpy as np
import pytest

from tests.conftest import make_random_rib

from repro import obs
from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.errors import PoolError
from repro.net.prefix import Prefix
from repro.parallel import PoolConfig, PoolView, WorkerPool
from repro.server import LookupServer, TableHandle, protocol

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="worker pool tests assume POSIX"
)

RIB = make_random_rib(400, seed=77)
TRIE = Poptrie.from_rib(RIB, PoptrieConfig(s=16))
KEYS = np.random.default_rng(7).integers(
    0, 1 << 32, size=3000, dtype=np.uint64
)
EXPECTED = TRIE.lookup_batch(KEYS)


@pytest.fixture
def pool():
    with WorkerPool(TRIE, PoolConfig(workers=2, min_shard=16)) as p:
        yield p


class TestConfig:
    def test_rejects_nonsense(self):
        with pytest.raises(ValueError):
            PoolConfig(workers=0)
        with pytest.raises(ValueError):
            PoolConfig(min_shard=0)


class TestLookups:
    def test_batch_matches_source_exactly(self, pool):
        np.testing.assert_array_equal(pool.lookup_batch(KEYS), EXPECTED)

    def test_batch_accepts_plain_lists(self, pool):
        keys = [int(k) for k in KEYS[:50]]
        np.testing.assert_array_equal(
            pool.lookup_batch(keys), EXPECTED[:50]
        )

    def test_empty_batch(self, pool):
        assert len(pool.lookup_batch([])) == 0

    def test_tiny_batch_stays_on_one_worker(self, pool):
        # Below min_shard the batch must not be split: IPC per shard
        # would dominate.  Correctness is still exact.
        np.testing.assert_array_equal(
            pool.lookup_batch(KEYS[:3]), EXPECTED[:3]
        )

    def test_many_rounds_are_deterministic(self, pool):
        for _ in range(5):
            np.testing.assert_array_equal(pool.lookup_batch(KEYS), EXPECTED)

    def test_closed_pool_raises(self):
        pool = WorkerPool(TRIE, PoolConfig(workers=1))
        pool.close()
        with pytest.raises(PoolError, match="closed"):
            pool.lookup_batch(KEYS[:8])
        with pytest.raises(PoolError, match="closed"):
            pool.publish(TRIE)
        pool.close()  # idempotent

    def test_stats_shape(self, pool):
        stats = pool.stats()
        assert stats["workers"] == 2
        assert stats["generation"] == 0
        assert stats["algorithm"] == TRIE.name
        assert stats["image_nbytes"] > 0


class TestCrashSafety:
    def test_sigkilled_worker_is_respawned_and_batch_completes(self, pool):
        victim = pool._workers[1].process
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=5)
        # The very next batch routes a shard at the dead slot; the pool
        # must respawn it and still return the exact result.
        np.testing.assert_array_equal(pool.lookup_batch(KEYS), EXPECTED)
        assert pool.stats()["restarts"] >= 1
        # And the pool keeps working afterwards.
        np.testing.assert_array_equal(pool.lookup_batch(KEYS), EXPECTED)

    def test_repeated_deaths_trip_the_restart_limit(self):
        with WorkerPool(
            TRIE, PoolConfig(workers=1, restart_limit=0)
        ) as pool:
            os.kill(pool._workers[0].process.pid, signal.SIGKILL)
            pool._workers[0].process.join(timeout=5)
            with pytest.raises(PoolError, match="giving up"):
                pool.lookup_batch(KEYS[:32])


class TestHotSwap:
    def test_publish_moves_every_worker_to_the_new_table(self, pool):
        rib = make_random_rib(400, seed=78)
        new_trie = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        assert pool.publish(new_trie) == 1
        assert pool.generation == 1
        np.testing.assert_array_equal(
            pool.lookup_batch(KEYS), new_trie.lookup_batch(KEYS)
        )

    def test_old_segment_is_unlinked_after_the_drain(self, pool):
        name = pool._segment_name(0)
        assert os.path.exists(f"/dev/shm/{name}")
        pool.publish(TRIE)
        assert not os.path.exists(f"/dev/shm/{name}")
        assert os.path.exists(f"/dev/shm/{pool._segment_name(1)}")

    def test_swap_after_worker_death_lands_on_new_generation(self, pool):
        os.kill(pool._workers[0].process.pid, signal.SIGKILL)
        pool._workers[0].process.join(timeout=5)
        pool.publish(TRIE)
        assert pool.generation == 1
        np.testing.assert_array_equal(pool.lookup_batch(KEYS), EXPECTED)

    def test_close_unlinks_all_segments(self):
        pool = WorkerPool(TRIE, PoolConfig(workers=2))
        names = [pool._segment_name(0)]
        pool.publish(TRIE)
        names.append(pool._segment_name(1))
        pool.close()
        for name in names:
            assert not os.path.exists(f"/dev/shm/{name}")


class TestPoolView:
    def test_view_is_structure_shaped(self, pool):
        view = pool.view()
        assert isinstance(view, PoolView)
        assert view.offload_batches is True
        assert view.width == 32
        assert view.name == f"pool({TRIE.name})×2"
        assert view.memory_bytes() == pool.image_nbytes
        key = Prefix.parse("10.1.2.3/32").value
        assert view.lookup(key) == TRIE.lookup(key)

    def test_publish_structure_returns_fresh_view(self, pool):
        old_view = pool.view()
        new_view = pool.publish_structure(TRIE)
        assert new_view.generation == 1
        assert old_view.generation == 0  # pinned at creation
        np.testing.assert_array_equal(new_view.lookup_batch(KEYS), EXPECTED)


class TestObservability:
    @pytest.fixture(autouse=True)
    def _obs(self):
        obs.disable()
        registry = obs.enable()
        yield registry
        obs.disable()

    def test_pool_metrics_surface(self, _obs):
        with WorkerPool(TRIE, PoolConfig(workers=2, min_shard=16)) as pool:
            pool.lookup_batch(KEYS)
            pool.publish(TRIE)
            pool.lookup_batch(KEYS)
        snap = _obs.snapshot()
        label = f'pool="{TRIE.name}"'
        # Per-worker shard counters: both slots completed work.
        for worker in ("0", "1"):
            key = f'repro_pool_batches_total{{{label},worker="{worker}"}}'
            assert snap.get(key, 0) >= 1, sorted(snap)
        # The generation gauge tracks the published table.
        assert snap[f"repro_pool_generation{{{label}}}"] == 1
        assert snap[f"repro_pool_workers{{{label}}}"] == 2
        assert snap[f"repro_pool_swaps_total{{{label}}}"] == 1
        # The shard-size histogram observed each dispatched shard.
        families = {f.name: f for f in _obs.families()}
        hist = families["repro_pool_shard_keys"]
        observed = sum(
            child.count for child in hist.children.values()
        )
        assert observed >= 4  # 2 batches × 2 shards

    def test_restart_counter(self, _obs):
        with WorkerPool(TRIE, PoolConfig(workers=1, min_shard=16)) as pool:
            os.kill(pool._workers[0].process.pid, signal.SIGKILL)
            pool._workers[0].process.join(timeout=5)
            pool.lookup_batch(KEYS[:64])
        snap = _obs.snapshot()
        key = (
            f'repro_pool_worker_restarts_total{{pool="{TRIE.name}",'
            f'worker="0"}}'
        )
        assert snap[key] == 1


# ---------------------------------------------------------------------------
# service integration: serve --workers N in miniature
# ---------------------------------------------------------------------------


async def _roundtrip(reader, writer, opcode, request_id, keys=()):
    protocol.write_frame(
        writer, protocol.encode_request(opcode, request_id, keys)
    )
    await writer.drain()
    payload = await protocol.read_frame(reader)
    assert payload is not None
    return protocol.decode_response(payload)


class TestServerIntegration:
    def test_serve_from_pool_with_reload_mid_run(self):
        """The miniature of the CI smoke job: a server whose handle wraps
        a pool view answers from worker processes; OP_RELOAD publishes a
        rebuilt table through the pool and bumps the generation; every
        response before and after is exact for its generation."""
        rib = make_random_rib(300, seed=99)
        first = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        rib.insert(Prefix.parse("203.0.113.0/24"), 49)
        second = Poptrie.from_rib(rib, PoptrieConfig(s=16))
        probe = np.random.default_rng(3).integers(
            0, 1 << 32, size=512, dtype=np.uint64
        )

        async def scenario():
            with WorkerPool(first, PoolConfig(workers=2, min_shard=16)) as pool:
                server = LookupServer(
                    TableHandle(pool.view()),
                    rebuild=lambda: pool.publish_structure(second),
                )
                host, port = await server.start()
                try:
                    reader, writer = await asyncio.open_connection(host, port)
                    response = await _roundtrip(
                        reader, writer, protocol.OP_LOOKUP4, 1, probe.tolist()
                    )
                    assert response.ok and response.generation == 0
                    assert response.results.tolist() == (
                        first.lookup_batch(probe).tolist()
                    )
                    reload_response = await _roundtrip(
                        reader, writer, protocol.OP_RELOAD, 2
                    )
                    assert reload_response.ok
                    assert reload_response.generation == 1
                    response = await _roundtrip(
                        reader, writer, protocol.OP_LOOKUP4, 3, probe.tolist()
                    )
                    assert response.ok and response.generation == 1
                    assert response.results.tolist() == (
                        second.lookup_batch(probe).tolist()
                    )
                    stats = await _roundtrip(
                        reader, writer, protocol.OP_STATS, 4
                    )
                    body = json.loads(stats.text)
                    assert body["structure"].startswith("pool(")
                    assert body["handle"]["generation"] == 1
                    writer.close()
                finally:
                    await server.stop()

        asyncio.run(scenario())

    def test_server_survives_sigkilled_worker(self):
        """A worker killed between requests never surfaces to clients:
        the pool respawns it inside the offloaded batch."""
        probe = KEYS[:512]

        async def scenario():
            with WorkerPool(TRIE, PoolConfig(workers=2, min_shard=16)) as pool:
                server = LookupServer(TableHandle(pool.view()))
                host, port = await server.start()
                try:
                    reader, writer = await asyncio.open_connection(host, port)
                    response = await _roundtrip(
                        reader, writer, protocol.OP_LOOKUP4, 1, probe.tolist()
                    )
                    assert response.ok
                    os.kill(
                        pool._workers[0].process.pid, signal.SIGKILL
                    )
                    pool._workers[0].process.join(timeout=5)
                    response = await _roundtrip(
                        reader, writer, protocol.OP_LOOKUP4, 2, probe.tolist()
                    )
                    assert response.ok
                    assert response.results.tolist() == (
                        EXPECTED[:512].tolist()
                    )
                    writer.close()
                finally:
                    await server.stop()

        asyncio.run(scenario())
