"""Full-scale structural regression (opt-in: REPRO_FULL=1).

Pins the full-scale numbers EXPERIMENTS.md quotes against the paper, so
a future change to the table generator or the builders that silently
drifts them gets caught.  Skipped by default — generating the 531k-route
table and compiling every structure takes ~2 minutes.

Run with:  REPRO_FULL=1 pytest tests/test_fullscale_regression.py
"""

import os

import pytest

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_FULL") != "1",
    reason="full-scale regression is opt-in (REPRO_FULL=1)",
)


@pytest.fixture(scope="module")
def full_dataset():
    from repro.data.datasets import load_dataset

    return load_dataset("REAL-Tier1-A", scale=1.0)


def test_published_table_size(full_dataset):
    assert len(full_dataset) == 531489  # exact: the generator hits spec


def test_poptrie18_structural_numbers(full_dataset):
    from repro.core.aggregate import aggregated_rib
    from repro.core.poptrie import Poptrie, PoptrieConfig

    trie = Poptrie.from_rib(
        aggregated_rib(full_dataset.rib),
        PoptrieConfig(s=18),
        fib_size=len(full_dataset.fib) + 1,
    )
    # Paper: 40,760 inodes / 245,034 leaves / 2.40 MiB.  Pin our measured
    # band (±20 % around the recorded values, well inside paper-comparable).
    assert 27_000 < trie.inode_count < 45_000
    assert 180_000 < trie.leaf_count < 280_000
    assert 1.8 < trie.memory_mib() < 2.8


def test_dxr_and_sail_structural_numbers(full_dataset):
    from repro.lookup.dxr import Dxr
    from repro.lookup.sail import Sail

    d18r = Dxr.from_rib(full_dataset.rib, s=18)
    # Paper: 1.91 MiB, ~230k ranges.
    assert 180_000 < len(d18r.starts) < 300_000
    assert 1.5 < d18r.memory_mib() < 2.4

    sail = Sail.from_rib(full_dataset.rib)  # must compile (< 2^15 chunks)
    assert sail.memory_mib() > 8.0  # exceeds the L3, the paper's key fact


def test_syn2_breaks_sail(full_dataset):
    from repro.data.expand import expand_syn2
    from repro.errors import StructuralLimitError
    from repro.lookup.sail import Sail

    syn2 = expand_syn2(full_dataset.rib)
    with pytest.raises(StructuralLimitError):
        Sail.from_rib(syn2)
