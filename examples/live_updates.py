#!/usr/bin/env python3
"""Replay a BGP update stream against a live FIB (Section 3.5 / 4.9).

Builds a table, synthesises an hour's worth of announce/withdraw churn
(scaled), applies it incrementally while continuously verifying lookups,
and prints the replacement accounting the paper reports.

Run:  python examples/live_updates.py [route_count] [update_count]
"""

import random
import sys
import time

from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.core.update import UpdatablePoptrie
from repro.data.synth import generate_table
from repro.data.updates import generate_update_stream


def main() -> None:
    route_count = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    update_count = int(sys.argv[2]) if len(sys.argv) > 2 else 2_000

    rib, _ = generate_table(route_count, n_nexthops=32, seed=3)
    stream = generate_update_stream(rib, update_count, seed=52)
    announces = sum(1 for u in stream if u.kind == "A")
    print(f"table: {len(rib)} routes; stream: {announces} announcements, "
          f"{len(stream) - announces} withdrawals")

    up = UpdatablePoptrie(PoptrieConfig(s=18), rib=rib)
    rng = random.Random(1)
    probes = [rng.getrandbits(32) for _ in range(200)]

    start = time.perf_counter()
    for i, update in enumerate(stream):
        if update.kind == "A":
            up.announce(update.prefix, update.nexthop)
        else:
            up.withdraw(update.prefix)
        if i % 500 == 499:
            # Continuous verification: the FIB always matches the RIB.
            assert all(up.lookup(k) == up.rib.lookup(k) for k in probes)
    elapsed = time.perf_counter() - start

    top, leaves, inodes = up.stats.per_update()
    print(f"\napplied {len(stream)} updates in {elapsed:.2f} s "
          f"({elapsed / len(stream) * 1e6:.1f} us/update in Python; "
          "the paper's C implementation: 2.51 us)")
    print(f"per update: {top:.3f} top-level replacements, "
          f"{leaves:.2f} leaves, {inodes:.2f} internal nodes "
          "(paper: 0.041 / 6.05 / 0.48)")

    rebuilt = Poptrie.from_rib(up.rib, up.trie.config)
    print(f"structure equals a fresh compile: "
          f"{rebuilt.inode_count == up.trie.inode_count and rebuilt.leaf_count == up.trie.leaf_count}")


if __name__ == "__main__":
    main()
