#!/usr/bin/env python3
"""Compare every lookup structure's memory footprint on one table.

Reproduces the flavour of the paper's Tables 2/3 interactively: compile
the same routing table into all seven structures (plus Poptrie variants)
and report size, node counts and a correctness cross-check.

Run:  python examples/fib_compression_report.py [dataset] [scale]
e.g.  python examples/fib_compression_report.py REAL-Tier1-A 0.05
"""

import sys

from repro.lookup.registry import standard_roster
from repro.bench.report import Table
from repro.core.aggregate import aggregate_simple
from repro.data.datasets import EVALUATION_TABLES, load_dataset
from repro.data.traffic import random_addresses

ALGORITHMS = (
    "Radix",
    "Tree BitMap",
    "Tree BitMap (64-ary)",
    "SAIL",
    "DIR-24-8",
    "D16R",
    "D18R",
    "Poptrie0",
    "Poptrie16",
    "Poptrie18",
)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "REAL-Tier1-A"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.05
    if name not in EVALUATION_TABLES:
        raise SystemExit(f"unknown dataset {name!r}; try {EVALUATION_TABLES[:3]}")

    ds = load_dataset(name, scale=scale)
    aggregated = aggregate_simple(ds.rib)
    print(f"{name} at scale {scale}: {len(ds)} routes, "
          f"{len(ds.fib)} next hops; "
          f"route aggregation would keep {len(aggregated)} routes "
          f"({100 * len(aggregated) / len(ds):.1f} %)")

    roster = standard_roster(ds.rib, names=ALGORITHMS)
    keys = random_addresses(20_000, seed=1)
    expected = [ds.rib.lookup(int(k)) for k in keys]

    table = Table(
        ["Structure", "KiB", "bytes/route", "verified"],
        title=f"FIB compression report: {name}",
    )
    for algorithm, structure in roster.items():
        if structure is None:
            table.add_row([algorithm, None, None, None])
            continue
        got = structure.lookup_batch(keys)
        verified = "OK" if got.tolist() == expected else "MISMATCH"
        table.add_row(
            [
                algorithm,
                structure.memory_bytes() / 1024,
                structure.memory_bytes() / max(len(ds), 1),
                verified,
            ]
        )
    table.print()


if __name__ == "__main__":
    main()
