#!/usr/bin/env python3
"""An NFV-style software router forwarding packets through a Poptrie FIB.

The paper's motivation (Section 1): forward packets on commodity CPUs
without TCAMs.  This example builds a BGP-scale table, wires a forwarding
plane over it, pushes a synthetic traffic mix through, and prints per-port
counters — then swaps the FIB structure for a baseline to show the
drop-in :class:`LookupStructure` interface.

Run:  python examples/software_router.py [route_count]
"""

import sys
import time

from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.data.synth import generate_table
from repro.data.traffic import real_trace
from repro.lookup.sail import Sail
from repro.router import ForwardingPlane
from repro.router.packet import synth_packets


def main() -> None:
    route_count = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    print(f"generating a {route_count}-route table with 16 peers ...")
    rib, fib = generate_table(route_count, n_nexthops=16, seed=7,
                              igp_fraction=0.05)

    for label, structure in (
        ("Poptrie18", Poptrie.from_rib(rib, PoptrieConfig(s=18))),
        ("SAIL", Sail.from_rib(rib)),
    ):
        plane = ForwardingPlane(structure, fib)
        destinations = real_trace(rib, 60_000, seed=3)

        # Slow path: packet-at-a-time with TTL handling.
        packets = list(synth_packets(destinations[:5_000]))
        start = time.perf_counter()
        for packet in packets:
            plane.forward(packet)
        slow = time.perf_counter() - start

        # Fast path: batch forwarding by destination column.
        start = time.perf_counter()
        plane.forward_batch(destinations[5_000:])
        fast = time.perf_counter() - start

        print(f"\n=== {label} ({structure.memory_bytes() / 1024:.0f} KiB FIB)")
        print(f"  slow path: {len(packets) / slow / 1e3:8.1f} kpps")
        print(f"  fast path: {(len(destinations) - 5000) / fast / 1e3:8.1f} kpps")
        print(f"  drops: {plane.dropped_no_route} no-route, "
              f"{plane.dropped_ttl} ttl")
        top_ports = sorted(
            plane.ports.items(), key=lambda kv: -kv[1].packets
        )[:5]
        for port, counters in top_ports:
            print(f"  port {port:3d}: {counters.packets:7d} pkts "
                  f"{counters.bytes / 1024:9.1f} KiB")


if __name__ == "__main__":
    main()
