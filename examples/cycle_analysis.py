#!/usr/bin/env python3
"""Per-lookup CPU-cycle analysis with the cache simulator (Section 4.6).

Builds a routing table, compiles SAIL / DXR / Poptrie, replays random
lookups through the simulated Haswell cache hierarchy, and prints the
percentile table plus per-level hit statistics — the reproduction of the
paper's PMC methodology (see DESIGN.md's substitution table).

Run:  python examples/cycle_analysis.py [route_count]
"""

import sys

from repro.bench.report import Table
from repro.cachesim import CycleModel, HASWELL_I7_4770K, percentile_summary
from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.data.synth import generate_table
from repro.data.xorshift import xorshift32_array
from repro.lookup.dxr import Dxr
from repro.lookup.sail import Sail


def main() -> None:
    route_count = int(sys.argv[1]) if len(sys.argv) > 1 else 50_000
    rib, _ = generate_table(route_count, n_nexthops=13, seed=9,
                            igp_fraction=0.05)
    structures = {
        "SAIL": Sail.from_rib(rib),
        "D18R": Dxr.from_rib(rib, s=18),
        "Poptrie18": Poptrie.from_rib(rib, PoptrieConfig(s=18)),
    }
    warm = [int(x) for x in xorshift32_array(150_000, seed=5)]
    keys = [int(x) for x in xorshift32_array(40_000, seed=99)]

    table = Table(
        ["Algorithm", "Mem KiB", "Mean", "p50", "p75", "p95", "p99",
         "L1 hit %", "DRAM accesses"],
        title=f"Simulated cycles/lookup on {HASWELL_I7_4770K.name}",
    )
    for name, structure in structures.items():
        model = CycleModel(HASWELL_I7_4770K)
        model.measure(structure, warm, warmup=0)   # converge the caches
        cycles = model.measure(structure, keys, warmup=0)
        summary = percentile_summary(cycles)
        l1 = model.hierarchy.caches[0]
        table.add_row(
            [
                name,
                structure.memory_bytes() / 1024,
                summary.mean,
                summary.p50,
                summary.p75,
                summary.p95,
                summary.p99,
                100 * l1.hit_rate,
                model.hierarchy.dram_accesses,
            ]
        )
    table.print()
    print("Interpretation guide (paper Section 4.6): SAIL's median is the")
    print("cheapest (L2-resident top level) but its tail pays DRAM; Poptrie")
    print("bounds the tail because the whole structure is cache-resident")
    print("and a deep lookup is a fixed, small number of accesses.")


if __name__ == "__main__":
    main()
