#!/usr/bin/env python3
"""Quickstart: build a Poptrie from routes, look addresses up, update it.

Run:  python examples/quickstart.py
"""

from repro import Poptrie, PoptrieConfig, Prefix, Rib, UpdatablePoptrie


def main() -> None:
    # 1. A RIB is a radix tree of (prefix -> FIB index) routes.
    rib = Rib()
    routes = [
        ("0.0.0.0/0", 1),        # default via FIB entry 1
        ("10.0.0.0/8", 2),
        ("10.64.0.0/10", 3),     # punches a hole in the /8
        ("192.0.2.0/24", 4),
        ("198.51.100.0/24", 2),  # same next hop as the /8 -> aggregatable
    ]
    for text, fib_index in routes:
        rib.insert(Prefix.parse(text), fib_index)

    # 2. Compile the paper's structure: k=6, leafvec, direct pointing s=18.
    trie = Poptrie.from_rib(rib, PoptrieConfig(s=18))
    print(f"compiled {trie.name}: {trie.inode_count} internal nodes, "
          f"{trie.leaf_count} leaves, {trie.memory_bytes() / 1024:.1f} KiB")

    # 3. Longest-prefix-match lookups.
    for text in ("10.65.1.1", "10.1.2.3", "192.0.2.200", "8.8.8.8"):
        key = Prefix.parse(text + "/32").value
        print(f"  {text:14s} -> FIB[{trie.lookup(key)}]")

    # 4. Batch lookups through the numpy engine.
    import numpy as np

    keys = np.array(
        [Prefix.parse(t + "/32").value
         for t in ("10.65.1.1", "10.1.2.3", "192.0.2.200", "8.8.8.8")],
        dtype=np.uint64,
    )
    print("batch:", trie.lookup_batch(keys).tolist())

    # 5. Incremental updates without recompiling (Section 3.5).
    updatable = UpdatablePoptrie(PoptrieConfig(s=18))
    for text, fib_index in routes:
        updatable.announce(Prefix.parse(text), fib_index)
    updatable.withdraw(Prefix.parse("10.64.0.0/10"))
    key = Prefix.parse("10.65.1.1/32").value
    print(f"after withdraw, 10.65.1.1 -> FIB[{updatable.lookup(key)}] "
          f"(stats: {updatable.stats})")


if __name__ == "__main__":
    main()
