#!/usr/bin/env python3
"""IPv6 longest-prefix match with Poptrie (the paper's Section 4.10).

Builds an IPv6 table in 2000::/8, compiles Poptrie with and without
direct pointing, and looks up random IPv6 addresses assembled from four
xorshift32 words exactly as the paper's IPv6 benchmark does.

Run:  python examples/ipv6_lookup.py
"""

from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.data.synth import generate_table_v6
from repro.data.traffic import random_addresses_v6
from repro.net.ip import format_address
from repro.net.prefix import Prefix


def main() -> None:
    rib, fib = generate_table_v6(n_prefixes=2000, n_nexthops=13, seed=4)
    print(f"IPv6 table: {len(rib)} prefixes, {len(fib)} next hops")

    tries = {
        s: Poptrie.from_rib(rib, PoptrieConfig(s=s)) for s in (0, 16, 18)
    }
    for s, trie in tries.items():
        print(f"  s={s:2d}: {trie.inode_count:5d} inodes "
              f"{trie.leaf_count:5d} leaves "
              f"{trie.memory_bytes() / 1024:8.1f} KiB")

    # Random probes over all of 2000::/8 mostly miss (the allocated space
    # is sparse, exactly as on the real IPv6 Internet), so probe a mix of
    # uniform addresses and hosts inside announced prefixes.
    import random as stdlib_random

    rng = stdlib_random.Random(2)
    routed = [p for p, _ in rib.routes()]
    probes = random_addresses_v6(3, seed=11)
    probes += [
        p.value | rng.getrandbits(128 - p.length)
        for p in rng.sample(routed, 5)
    ]
    print("\nsample lookups:")
    for key in probes:
        results = {s: trie.lookup(key) for s, trie in tries.items()}
        assert len(set(results.values())) == 1, "variants disagree!"
        hop = fib.get(results[18])
        print(f"  {format_address(key, 128):40s} -> "
              f"{'no route' if hop is None else hop}")

    # A hand-picked longest-match demonstration.
    rib2 = type(rib)(width=128)
    rib2.insert(Prefix.parse("2001:db8::/32"), 1)
    rib2.insert(Prefix.parse("2001:db8:aaaa::/48"), 2)
    trie = Poptrie.from_rib(rib2, PoptrieConfig(s=16))
    probe = Prefix.parse("2001:db8:aaaa:1::1/128").value
    print(f"\n2001:db8:aaaa:1::1 matches FIB[{trie.lookup(probe)}] "
          "(the /48, not the /32)")


if __name__ == "__main__":
    main()
