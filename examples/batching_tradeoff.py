#!/usr/bin/env python3
"""The batching trade-off the paper's Section 2 raises against GPU engines.

"The large packet batch size is likely to lead to the higher worst case
packet forwarding latency, and jitters."  This example sweeps the batch
size of a simulated forwarding pipeline at two arrival rates and prints
throughput vs latency/jitter — the U-shape (queueing at tiny batches,
fill-latency at huge ones) made visible.

Run:  python examples/batching_tradeoff.py
"""

from repro.bench.report import Table
from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.data.synth import generate_table
from repro.data.traffic import real_trace
from repro.router.pipeline import CostModel, batch_size_sweep


def main() -> None:
    rib, fib = generate_table(10_000, n_nexthops=8, seed=6)
    trie = Poptrie.from_rib(rib, PoptrieConfig(s=18))
    destinations = real_trace(rib, 30_000, seed=2)
    cost = CostModel(batch_overhead=2.0, per_packet=0.01)

    for label, interval in (
        ("underload (0.33 Mpps offered)", 3.0),
        ("near saturation (20 Mpps offered)", 0.05),
    ):
        table = Table(
            ["batch", "Mpps", "mean us", "p99 us", "max us", "jitter us"],
            title=f"Batch-size sweep, {label}",
        )
        for batch, report in batch_size_sweep(
            trie, fib, destinations,
            batch_sizes=(1, 8, 32, 128, 512),
            arrival_interval=interval, cost=cost,
        ):
            table.add_row(
                [batch, report.throughput_mpps, report.mean_latency,
                 report.p99_latency, report.max_latency, report.jitter]
            )
        table.print()
    print("Underload: worst-case latency and jitter grow with batch size")
    print("(the paper's critique of GPU-scale batching).  Saturation:")
    print("tiny batches cannot amortise per-batch overhead and queueing")
    print("delay explodes — why software routers batch at all.")


if __name__ == "__main__":
    main()
