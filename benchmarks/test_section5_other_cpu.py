"""Section 5: "Evaluation with a different generation of CPU architecture".

The paper re-runs the comparison on a Xeon X3430 (Lynnfield, 2.4 GHz) and
finds the same ranking ("Poptrie18 is 1.27 and 1.17 times faster than
D18R and SAIL").  We re-run the cycle model with the Xeon hierarchy
profile and assert the tail ordering from Table 4 is CPU-independent.
"""

import numpy as np

from benchmarks.conftest import (
    CYCLE_ALGORITHMS,
    CYCLE_SCALE,
    emit,
    measure_cycles,
)

from repro.bench.report import Table
from repro.cachesim.cycles import percentile_summary
from repro.cachesim.profiles import XEON_X3430


def test_section5_other_cpu_generation(benchmark, cycle_data,
                                       cycle_warmup_keys, cycle_query_keys):
    _, roster, haswell_cycles = cycle_data

    xeon_cycles = {
        name: measure_cycles(
            roster[name], cycle_warmup_keys, cycle_query_keys,
            profile=XEON_X3430,
        )
        for name in CYCLE_ALGORITHMS
    }

    table = Table(
        ["Algorithm", "Xeon mean", "Xeon p99", "Haswell mean", "Haswell p99"],
        title=(
            "Section 5: cycle model on Xeon X3430 vs Haswell "
            f"(scale={CYCLE_SCALE})"
        ),
    )
    for name in CYCLE_ALGORITHMS:
        xeon = percentile_summary(xeon_cycles[name])
        haswell = percentile_summary(haswell_cycles[name])
        table.add_row([name, xeon.mean, xeon.p99, haswell.mean, haswell.p99])
    emit(table, "section5_other_cpu")

    # The paper's Section 5 claim: the ranking is not an artifact of one
    # CPU — Poptrie still "outperforms SAIL and DXR" on the Xeon.  In tail
    # terms: Poptrie18 beats SAIL and both D16Rs outright, and stays within
    # a whisker of the best tail (the Xeon's cheaper relative DRAM narrows
    # every gap; the paper's own Xeon margins shrink to 1.17–1.27× too).
    p99 = {n: float(np.percentile(v, 99)) for n, v in xeon_cycles.items()}
    assert p99["Poptrie18"] < p99["SAIL"]
    assert p99["Poptrie18"] <= p99["D16R"]
    assert p99["Poptrie18"] <= 1.25 * min(p99.values())

    benchmark.pedantic(
        lambda: measure_cycles(
            roster["Poptrie18"], cycle_warmup_keys[:2000],
            cycle_query_keys[:2000], profile=XEON_X3430,
        ),
        rounds=1,
        iterations=1,
    )
