"""Replicated-cluster benchmark: scaling grid and failover-time curve.

Stands up real in-process clusters — primary journal, checkpoint-shipped
replicas, sharded client router — and persists ``BENCH_cluster.json``
under ``benchmarks/results/`` so successive PRs can compare routed
throughput, shard/replica scaling and failover latency like-for-like.
The CI cluster-chaos job produces the same artifact cross-process via
``repro replica`` + ``repro loadgen --shard-map``.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import RESULTS_DIR

from repro.bench.cluster_scenario import emit_cluster_bench

#: Scaled down like the other benchmarks; REPRO_CLUSTER_DURATION
#: stretches each cell's measured window for steadier percentiles.
DURATION = float(os.environ.get("REPRO_CLUSTER_DURATION", "1.0"))
RATE = float(os.environ.get("REPRO_CLUSTER_RATE", "600"))


def test_cluster_scaling_artifact():
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_cluster.json"
    result = emit_cluster_bench(
        path=str(path),
        routes=4_000,
        duration=DURATION,
        rate=RATE,
        batch=16,
        shard_counts=(1, 2),
        replica_counts=(0, 1),
        failover_replicas=(1, 2),
        quorum_insync=(0, 1),
        updates=200,
        seed=7,
    )
    print()
    for cell in result["grid"]:
        print(
            f"cluster {cell['shards']}x shards, {cell['replicas']} replicas: "
            f"{cell['throughput_rps']:.0f} req/s "
            f"({cell['throughput_klps']:.1f} klps), "
            f"p50 {cell['latency_us']['p50']:.0f} us, "
            f"p99 {cell['latency_us']['p99']:.0f} us"
        )
    for cell in result["failover"]:
        print(
            f"failover with {cell['replicas']} replicas: read blackout "
            f"{cell['read_blackout_ms']:.1f} ms, promotion "
            f"{cell['promotion_ms']:.1f} ms"
        )
    for cell in result["quorum"]:
        latency = cell["write_latency_us"]
        print(
            f"writes with min_insync={cell['min_insync']}: "
            f"p50 {latency['p50']:.0f} us, p99 {latency['p99']:.0f} us "
            f"({cell['quorum_sheds']} sheds)"
        )

    # The scenario's contract: sharded routing answers exactly like the
    # global table, and a primary kill costs zero failed lookups.
    for cell in result["grid"]:
        assert cell["errors"] == 0
        assert cell["mismatched"] == 0
        assert cell["throughput_rps"] > 0
    for cell in result["failover"]:
        assert cell["errors"] == 0
        assert cell["mismatched"] == 0
        assert cell["promoted_seqno"] == cell["seqno_at_failover"]
        assert cell["post_failover_seqno"] > cell["seqno_at_failover"]
    # The quorum cost curve: every batch acked (no sheds with a healthy
    # replica), and the quorum-on cell really replicated the stream.
    for cell in result["quorum"]:
        assert cell["quorum_sheds"] == 0
        assert cell["write_latency_us"]["p50"] > 0
        if cell["min_insync"]:
            assert cell["replica_seqno_at_close"] >= cell["updates"]

    # The artifact on disk is the same JSON the test saw.
    persisted = json.loads(path.read_text())
    assert persisted["scenario"] == "cluster"
    assert len(persisted["grid"]) == 4
    assert len(persisted["failover"]) == 2
    assert len(persisted["quorum"]) == 2
    for cell in persisted["quorum"]:
        assert {"mean", "p50", "p90", "p99"} <= set(cell["write_latency_us"])
