"""Figure 10: CDF of simulated CPU cycles per lookup (REAL-Tier1-A).

Replays each algorithm's memory-access traces through the Haswell cache
model (the paper's PMC substitute; see DESIGN.md) at the published table
scale (REPRO_CYCLE_SCALE) and prints CDF points.

Asserted shape, from the published figure:
- SAIL has the steepest start (its 128 KiB top level is L2-resident, so
  its median lookup is the cheapest of all algorithms), but
- SAIL's tail is the worst — its full structure exceeds the L3, so the
  high percentiles go toward DRAM, while
- Poptrie18's tail is the tightest of the five (its whole structure is
  cache-resident and its deep lookups are a bounded number of accesses).
"""

import numpy as np

from benchmarks.conftest import (
    CYCLE_ALGORITHMS,
    CYCLE_SCALE,
    emit,
    measure_cycles,
)

from repro.bench.report import Table
from repro.cachesim.cycles import cdf_points


def test_figure10_cycle_cdf(benchmark, cycle_data, cycle_warmup_keys,
                            cycle_query_keys):
    _, roster, cycles = cycle_data

    thresholds = [20, 40, 60, 80, 100, 150, 200, 250, 300, 350]
    table = Table(
        ["cycles"] + list(CYCLE_ALGORITHMS),
        title=(
            "Figure 10: CDF of cycles per lookup, REAL-Tier1-A "
            f"(scale={CYCLE_SCALE})"
        ),
    )
    cdfs = {
        name: dict(cdf_points(values, 350)) for name, values in cycles.items()
    }
    for threshold in thresholds:
        table.add_row(
            [threshold]
            + [round(cdfs[name][threshold], 3) for name in CYCLE_ALGORITHMS]
        )
    emit(table, "figure10_cycle_cdf")

    p50 = {name: float(np.percentile(v, 50)) for name, v in cycles.items()}
    p99 = {name: float(np.percentile(v, 99)) for name, v in cycles.items()}

    # SAIL: cheapest median of all five (steepest CDF start) ...
    assert p50["SAIL"] <= min(p50.values()) + 1e-9
    # ... and the worst tail of all five.
    assert p99["SAIL"] >= max(p99.values()) - 1e-9
    # Poptrie18's tail beats both DXRs and SAIL (paper Table 4: 169 vs
    # 207/255/299).
    assert p99["Poptrie18"] <= p99["D18R"]
    assert p99["Poptrie18"] <= p99["D16R"]

    benchmark.pedantic(
        lambda: measure_cycles(
            roster["Poptrie18"], cycle_warmup_keys[:2000], cycle_query_keys[:2000]
        ),
        rounds=1,
        iterations=1,
    )
