"""Table 3: memory footprint and lookup rate per algorithm,
REAL-Tier1-A and REAL-Tier1-B (including the 64-ary Tree BitMap row).

Asserted shape (the paper's memory column, which is scale-free in its
ordering):  DXR < Poptrie < Tree BitMap < SAIL < Radix, with SAIL the
only cache-conscious structure whose footprint still blows past the L3.
"""

from benchmarks.conftest import SCALE, dataset, emit, roster_for

from repro.bench.harness import measure_rate_batch, measure_rate_scalar
from repro.bench.report import Table

ALGORITHMS = (
    "Radix",
    "Tree BitMap",
    "Tree BitMap (64-ary)",
    "SAIL",
    "D16R",
    "D18R",
    "Poptrie0",
    "Poptrie16",
    "Poptrie18",
)


def test_table3_memory_and_rate(benchmark, random_queries):
    table = Table(
        ["Algorithm", "A: Mem MiB", "A: Mlps", "B: Mem MiB", "B: Mlps"],
        title=f"Table 3: footprint and batch rate (scale={SCALE})",
    )
    rosters = {
        name: roster_for(name, ALGORITHMS)
        for name in ("REAL-Tier1-A", "REAL-Tier1-B")
    }
    rows = {}
    for algorithm in ALGORITHMS:
        cells = []
        for name in ("REAL-Tier1-A", "REAL-Tier1-B"):
            structure = rosters[name][algorithm]
            if structure is None:
                cells += [None, None]
                continue
            rate = measure_rate_batch(
                structure, random_queries[:50_000], repeats=1
            )
            cells += [structure.memory_mib(), rate.mlps]
        rows[algorithm] = cells
        table.add_row([algorithm] + cells)
    emit(table, "table3_algorithms")

    for name in ("REAL-Tier1-A", "REAL-Tier1-B"):
        roster = rosters[name]
        mem = {a: roster[a].memory_bytes() for a in ALGORITHMS}
        # The paper's ordering on both tables (comparisons that are free of
        # the fixed 2^s direct-array floor, so they hold at any scale):
        assert mem["D16R"] < mem["D18R"], name
        assert mem["Tree BitMap"] < mem["Tree BitMap (64-ary)"] * 1.5, name
        assert mem["SAIL"] > mem["Poptrie16"], name
        assert mem["Poptrie0"] < mem["Poptrie18"], name
        assert mem["Radix"] > mem["SAIL"] * (SCALE / (SCALE + 0.2)), name
        # Radix dwarfs the compressed trie itself (Poptrie0 has no fixed
        # direct-array floor, so the ratio holds at any dataset scale).
        assert mem["Radix"] > 5 * mem["Poptrie0"], name

    structure = rosters["REAL-Tier1-A"]["Poptrie18"]
    benchmark.pedantic(
        lambda: measure_rate_scalar(structure, 20_000, repeats=1),
        rounds=1,
        iterations=1,
    )
