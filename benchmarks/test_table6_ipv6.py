"""Table 6 + Section 4.10: IPv6.

Poptrie on the IPv6 table (20,440 prefixes at full scale) for s = 0, 16,
18: node/leaf counts, memory, compile time, and the random-pattern rate
(2000::/8 addresses built from four xorshift32 words, as in the paper).
Also the DXR IPv6 comparison (D16R/D18R with the extended format) and
SAIL's absence (it "does not support more specific routes than /64").

Asserted shape: direct pointing helps IPv6 too (s = 16/18 beat s = 0,
Table 6's rate column), the whole structure stays small (the paper's is
0.4–1.4 MiB), and SAIL rejects the workload.
"""

import time

import pytest

from benchmarks.conftest import emit

from repro.bench.harness import measure_rate_scalar_keys
from repro.bench.report import Table
from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.data.datasets import load_dataset_v6
from repro.data.traffic import random_addresses_v6
from repro.lookup.dxr import Dxr
from repro.lookup.sail import Sail

PAPER_TABLE6 = {0: (14925, 32586, 414), 16: (16554, 33047, 709),
                18: (14910, 32569, 1437)}


def test_table6_ipv6_poptrie(benchmark):
    ds = load_dataset_v6(scale=1.0)
    keys = random_addresses_v6(30_000, seed=6)
    table = Table(
        ["s", "# inodes", "# leaves", "Mem KiB", "Compile ms", "Mlps (scalar)",
         "paper KiB"],
        title=f"Table 6: Poptrie on IPv6 ({len(ds)} prefixes)",
    )
    results = {}
    for s in (0, 16, 18):
        start = time.perf_counter()
        trie = Poptrie.from_rib(ds.rib, PoptrieConfig(s=s))
        compile_ms = (time.perf_counter() - start) * 1000
        rate = measure_rate_scalar_keys(trie, keys, repeats=1)
        results[s] = (trie, rate)
        table.add_row(
            [s, trie.inode_count, trie.leaf_count,
             trie.memory_bytes() / 1024, compile_ms, rate.mlps,
             PAPER_TABLE6[s][2]]
        )
    emit(table, "table6_ipv6")

    # Footprints land in the paper's sub-2-MiB regime, ordered by s.
    for s in (0, 16, 18):
        assert results[s][0].memory_bytes() < 4 << 20
    assert results[0][0].memory_bytes() < results[16][0].memory_bytes()
    assert results[16][0].memory_bytes() < results[18][0].memory_bytes()

    # Direct pointing reduces trie depth for IPv6 as well (Table 6's rate
    # gain); in the interpreter that shows as fewer node traversals.
    deep_key = max(keys[:200], key=lambda k: results[0][0].depth_of(k))
    assert results[18][0].depth_of(deep_key) <= results[0][0].depth_of(deep_key)

    benchmark.pedantic(
        lambda: [results[18][0].lookup(k) for k in keys[:5000]],
        rounds=3,
        iterations=1,
    )


def test_section410_dxr_ipv6_and_sail_absence(benchmark):
    ds = load_dataset_v6(scale=1.0)
    keys = random_addresses_v6(15_000, seed=7)

    table = Table(
        ["Algorithm", "Mem KiB", "Mlps (scalar)"],
        title="Section 4.10: IPv6 comparison",
    )
    structures = {
        "D16R (IPv6)": Dxr.from_rib(ds.rib, s=16, modified=True),
        "D18R (IPv6)": Dxr.from_rib(ds.rib, s=18, modified=True),
        "Poptrie18": Poptrie.from_rib(ds.rib, PoptrieConfig(s=18)),
    }
    for name, structure in structures.items():
        rate = measure_rate_scalar_keys(structure, keys, repeats=1)
        table.add_row([name, structure.memory_bytes() / 1024, rate.mlps])
        mismatches = structure.verify_against(ds.rib, keys[:3000])
        assert mismatches == [], name
    emit(table, "section410_ipv6_dxr")

    # SAIL cannot participate (no IPv6 support).
    with pytest.raises(ValueError):
        Sail.from_rib(ds.rib)

    poptrie = structures["Poptrie18"]
    benchmark.pedantic(
        lambda: [poptrie.lookup(k) for k in keys[:5000]], rounds=3, iterations=1
    )
