"""Table 1: the RIB datasets — name, # of prefixes, # of distinct next hops.

Regenerates the dataset inventory and checks each synthesised table hits
its published prefix and next-hop counts (prefix counts scale with
REPRO_SCALE; next-hop counts are absolute).
"""

from benchmarks.conftest import SCALE, dataset, emit

from repro.bench.report import Table
from repro.data.datasets import DATASETS, EVALUATION_TABLES, SYNTHETIC_TABLES
from repro.data.synth import generate_table


def test_table1_dataset_inventory(benchmark):
    spec = DATASETS["REAL-Tier1-A"]
    benchmark.pedantic(
        lambda: generate_table(
            max(int(spec.prefixes * min(SCALE, 0.02)), 64),
            spec.nexthops,
            seed=1,
            igp_fraction=spec.igp_fraction,
        ),
        rounds=1,
        iterations=1,
    )

    table = Table(
        ["Name", "paper #prefixes", "#prefixes", "paper #nhops", "#nhops"],
        title=f"Table 1: RIB datasets (scale={SCALE})",
    )
    for name in EVALUATION_TABLES + SYNTHETIC_TABLES:
        spec = DATASETS[name]
        ds = dataset(name)
        nhops = len({hop for _, hop in ds.rib.routes()})
        table.add_row([name, spec.prefixes, len(ds), spec.nexthops, nhops])
        if spec.kind in ("rv", "real"):
            expected = int(spec.prefixes * SCALE)
            assert abs(len(ds) - expected) <= max(8, expected * 0.02), name
    emit(table, "table1_datasets")


def test_table1_syn_tables_grow_like_the_paper():
    """SYN1 ≈ 1.44× and SYN2 ≈ 1.67× the base table (published ratios)."""
    base = len(dataset("REAL-Tier1-A"))
    syn1 = len(dataset("SYN1-Tier1-A"))
    syn2 = len(dataset("SYN2-Tier1-A"))
    assert 1.25 < syn1 / base < 1.65
    assert 1.45 < syn2 / base < 1.90
    assert syn2 > syn1
