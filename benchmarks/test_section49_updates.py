"""Section 4.9: update performance.

The paper replays one hour of RV-linx-p52 updates (23,446 updates) and
reports: 0.041 top-level replacements, 6.05 leaf and 0.48 internal-node
replacements per update; 2.51 µs per update; and full-route insertion of
REAL-Tier1-A/B at ~5 µs per prefix.

We synthesise the equivalent stream (same announce/withdraw mix) against
the scaled RV-linx-p52 table and report the same quantities.  Asserted
shape: an update replaces a handful of objects, not a rebuild — per-update
replacement counts are O(10) while the structure holds O(10^4–10^5) nodes.
"""

import random
import time

from benchmarks.conftest import SCALE, dataset, emit

from repro.bench.report import Table
from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.core.update import UpdatablePoptrie
from repro.data.updates import replay_updates, generate_update_stream
from repro.net.rib import Rib

PAPER = {
    "toplevel/update": 0.041,
    "leaves/update": 6.05,
    "inodes/update": 0.48,
    "us/update": 2.51,
}


def _copy(rib: Rib) -> Rib:
    out = Rib(width=rib.width)
    for prefix, hop in rib.routes():
        out.insert(prefix, hop)
    return out


def test_section49_incremental_updates(benchmark):
    ds = dataset("RV-linx-p52")
    count = max(int(23446 * SCALE), 200)
    stream = generate_update_stream(ds.rib, count, seed=52)
    up = UpdatablePoptrie(PoptrieConfig(s=18), rib=_copy(ds.rib))

    start = time.perf_counter()
    replay_updates(up, stream)
    elapsed = time.perf_counter() - start

    top, leaves, inodes = up.stats.per_update()
    us_per_update = elapsed / count * 1e6

    table = Table(
        ["Metric", "measured", "paper"],
        title=f"Section 4.9: incremental update cost (scale={SCALE})",
    )
    table.add_row(["updates replayed", count, 23446])
    table.add_row(["top-level replacements / update", top, PAPER["toplevel/update"]])
    table.add_row(["leaves replaced / update", leaves, PAPER["leaves/update"]])
    table.add_row(["inodes replaced / update", inodes, PAPER["inodes/update"]])
    table.add_row(["us / update (Python)", us_per_update, PAPER["us/update"]])
    emit(table, "section49_updates")

    # An update is surgical: object replacements are O(10), never a rebuild
    # (paper: 0.041 top-level, 6.05 leaves, 0.48 inodes per update).
    assert top < 0.15
    assert leaves < 80
    assert inodes < 20
    # Leaves dominate inode replacements, as in the paper (6.05 vs 0.48).
    assert leaves > inodes

    benchmark.pedantic(
        lambda: replay_updates(
            up, generate_update_stream(up.rib, 50, seed=99)
        ),
        rounds=1,
        iterations=1,
    )


def test_section49_full_route_insertion(benchmark):
    """The paper's second update workload: inserting a full table in random
    order (REAL-Tier1-A: 2.71 s, i.e. ~5.1 µs per prefix in C)."""
    ds = dataset("REAL-Tier1-A")
    routes = list(ds.rib.routes())
    random.Random(7).shuffle(routes)

    def insert_all():
        up = UpdatablePoptrie(PoptrieConfig(s=18))
        for prefix, hop in routes:
            up.announce(prefix, hop)
        return up

    start = time.perf_counter()
    up = insert_all()
    elapsed = time.perf_counter() - start
    per_prefix_us = elapsed / len(routes) * 1e6

    table = Table(
        ["Metric", "measured", "paper (C)"],
        title=f"Section 4.9: full-route random-order insertion (scale={SCALE})",
    )
    table.add_row(["routes", len(routes), 531489])
    table.add_row(["total seconds", elapsed, 2.71])
    table.add_row(["us per prefix", per_prefix_us, 5.10])
    emit(table, "section49_full_insert")

    # The incrementally built trie equals a one-shot compilation.
    rebuilt = Poptrie.from_rib(up.rib, up.trie.config)
    assert rebuilt.inode_count == up.trie.inode_count
    assert rebuilt.leaf_count == up.trie.leaf_count

    benchmark.pedantic(
        lambda: replay_updates(
            up, generate_update_stream(up.rib, 25, seed=1)
        ),
        rounds=1,
        iterations=1,
    )
