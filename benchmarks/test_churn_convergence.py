"""Churn-convergence benchmark: lookups under sustained update storms.

The §4.9 microbenchmark times updates against a quiescent trie; this one
drives the *served* system — OP_UPDATE wire batches through journal
fsync, engine apply and RCU publish, with an open-loop load generator
measuring lookup latency concurrently — across both arrival regimes
(steady Poisson churn and bursty flap storms) for the incremental
Poptrie pipeline and the measured rebuild fallback.

Persists ``BENCH_churn.json`` under ``benchmarks/results/`` with
per-engine update p50/p99, lookup p99 during churn, RCU swap rate and
convergence lag; the committed repo-root artifact is the same sweep
recorded at ``REPRO_SCALE=1.0``.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import RESULTS_DIR, SCALE

from repro.bench.churn_scenario import emit_churn_bench

#: The engine matrix: incremental surgery vs. full-recompile fallback.
ENGINES = tuple(
    os.environ.get("REPRO_CHURN_ENGINES", "Poptrie18,SAIL").split(",")
)
#: Stream size per (engine, regime) cell; the full-scale artifact uses
#: more to steady the percentiles.
UPDATES = int(os.environ.get("REPRO_CHURN_UPDATES", "512"))
UPDATE_RATE = float(os.environ.get("REPRO_CHURN_RATE", "1500"))


def test_churn_convergence_artifact():
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_churn.json"
    result = emit_churn_bench(
        path=str(path),
        dataset_name="RV-linx-p52",
        scale=SCALE,
        engines=ENGINES,
        regimes=("steady", "bursty"),
        update_count=UPDATES,
        update_rate=UPDATE_RATE,
        seed=52,
    )
    print()
    for row in result["rows"]:
        conv = row["convergence"]
        lag = (
            f"{conv['lag_s'] * 1e3:8.1f}ms"
            if conv.get("lag_s") is not None
            else "   (none)"
        )
        print(
            f"{row['engine']:>10} {row['regime']:>7} "
            f"[{row['update_engine']:>11}]: "
            f"update wire p50 {row['updates']['wire_latency_us']['p50']:8.0f}us "
            f"p99 {row['updates']['wire_latency_us']['p99']:8.0f}us | "
            f"lookup p99 {row['lookup_during_churn_us']['p99']:7.0f}us | "
            f"{row['rcu']['swap_rate_hz']:6.1f} swaps/s "
            f"drain {row['rcu']['mean_drain_s'] * 1e6:6.1f}us | "
            f"convergence {lag}"
        )

    assert {r["regime"] for r in result["rows"]} == {"steady", "bursty"}
    for row in result["rows"]:
        # The scenario's contract: churn costs zero errored lookups and
        # every cell actually applied updates and converged.
        assert row["updates"]["errors"] == 0, row
        assert row["updates"]["applied"] > 0, row
        assert row["lookup"]["errors"] == 0, row
        assert row["convergence"]["observed"], row
        assert row["rcu"]["swaps"] > 0, row
        assert row["journal"]["fsyncs"] > 0, row

    persisted = json.loads(path.read_text())
    assert persisted["scenario"] == "churn_convergence"
    assert len(persisted["rows"]) == 2 * len(ENGINES)
