"""Ablations beyond the paper's own tables (DESIGN.md's extension list).

1. Direct-pointing sweep: s ∈ {0, 8, 12, 16, 18, 20} — memory/depth
   trade-off (extends Table 2's three points; the paper discusses why 18).
2. Route aggregation: none vs the paper's simple merge vs optimal ORTC.
3. Leaf width: 16-bit (paper) vs 32-bit (Section 5's structural headroom).
4. Trie arity: k ∈ {2, 4, 6} — why the paper picks the register width.
"""

import numpy as np

from benchmarks.conftest import SCALE, dataset, emit

from repro.bench.harness import measure_rate_batch
from repro.bench.report import Table
from repro.core.aggregate import aggregate_ortc, aggregate_simple, aggregated_rib
from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.data.traffic import random_addresses
from repro.net.rib import rib_from_routes


def test_ablation_direct_pointing_sweep(benchmark, random_queries):
    ds = dataset("REAL-Tier1-A")
    rib = aggregated_rib(ds.rib)
    fib_size = len(ds.fib) + 1
    keys = [int(k) for k in random_queries[:3000]]

    table = Table(
        ["s", "Mem MiB", "direct MiB", "mean trie depth", "batch Mlps"],
        title=f"Ablation: direct-pointing width sweep (scale={SCALE})",
    )
    depths = {}
    for s in (0, 8, 12, 16, 18, 20):
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=s), fib_size=fib_size)
        mean_depth = float(np.mean([trie.depth_of(k) for k in keys]))
        depths[s] = mean_depth
        rate = measure_rate_batch(trie, random_queries[:50_000], repeats=1)
        table.add_row(
            [s, trie.memory_mib(), (4 << s) / (1 << 20) if s else 0.0,
             mean_depth, rate.mlps]
        )
    emit(table, "ablation_direct_pointing")

    # Larger s strictly reduces traversal depth, at memory cost.
    ordered = [depths[s] for s in (0, 8, 12, 16, 18, 20)]
    assert all(a >= b for a, b in zip(ordered, ordered[1:]))

    benchmark.pedantic(
        lambda: Poptrie.from_rib(rib, PoptrieConfig(s=12), fib_size=fib_size),
        rounds=1,
        iterations=1,
    )


def test_ablation_aggregation_strategies(benchmark):
    ds = dataset("REAL-Tier1-A")
    fib_size = len(ds.fib) + 1

    simple_routes = aggregate_simple(ds.rib)
    ortc_routes = benchmark.pedantic(
        lambda: aggregate_ortc(ds.rib), rounds=1, iterations=1
    )

    variants = {
        "none": ds.rib,
        "simple (paper)": rib_from_routes(simple_routes),
        "ORTC (optimal)": rib_from_routes(ortc_routes),
    }
    table = Table(
        ["Aggregation", "routes", "Poptrie18 MiB", "# inodes", "# leaves"],
        title=f"Ablation: route aggregation strategies (scale={SCALE})",
    )
    memory = {}
    for label, rib in variants.items():
        trie = Poptrie.from_rib(rib, PoptrieConfig(s=18), fib_size=fib_size)
        memory[label] = trie.memory_bytes()
        table.add_row(
            [label, len(rib), trie.memory_mib(), trie.inode_count,
             trie.leaf_count]
        )
    emit(table, "ablation_aggregation")

    assert len(variants["simple (paper)"]) <= len(variants["none"])
    assert len(variants["ORTC (optimal)"]) <= len(variants["simple (paper)"])
    assert memory["simple (paper)"] <= memory["none"]


def test_ablation_leaf_width(benchmark, random_queries):
    ds = dataset("REAL-Tier1-A")
    rib = aggregated_rib(ds.rib)
    fib_size = len(ds.fib) + 1

    table = Table(
        ["leaf bits", "Mem MiB", "max FIB entries", "batch Mlps"],
        title=f"Ablation: leaf width (Section 5 headroom) (scale={SCALE})",
    )
    tries = {}
    for bits in (16, 32):
        trie = Poptrie.from_rib(
            rib, PoptrieConfig(s=18, leaf_bits=bits), fib_size=fib_size
        )
        tries[bits] = trie
        rate = measure_rate_batch(trie, random_queries[:50_000], repeats=1)
        table.add_row([bits, trie.memory_mib(), 1 << bits, rate.mlps])
    emit(table, "ablation_leaf_width")

    # Same tree shape, wider leaves: only the leaf array grows.
    assert tries[16].inode_count == tries[32].inode_count
    assert tries[32].memory_bytes() > tries[16].memory_bytes()

    benchmark.pedantic(
        lambda: tries[32].lookup_batch(random_queries[:65536]),
        rounds=1,
        iterations=1,
    )


def test_ablation_trie_arity(benchmark, random_queries):
    ds = dataset("REAL-Tier1-A")
    rib = aggregated_rib(ds.rib)
    fib_size = len(ds.fib) + 1
    keys = [int(k) for k in random_queries[:2000]]

    table = Table(
        ["k", "# inodes", "Mem MiB", "mean trie depth"],
        title=f"Ablation: multiway-trie arity (scale={SCALE})",
    )
    depths = {}
    for k in (2, 4, 6):
        trie = Poptrie.from_rib(
            rib, PoptrieConfig(k=k, s=16), fib_size=fib_size
        )
        depths[k] = float(np.mean([trie.depth_of(key) for key in keys]))
        table.add_row([k, trie.inode_count, trie.memory_mib(), depths[k]])
    emit(table, "ablation_arity")

    # The 64-ary trie needs the fewest levels — the paper's design point.
    assert depths[6] <= depths[4] <= depths[2]

    benchmark.pedantic(
        lambda: Poptrie.from_rib(rib, PoptrieConfig(k=4, s=16),
                                 fib_size=fib_size),
        rounds=1,
        iterations=1,
    )
