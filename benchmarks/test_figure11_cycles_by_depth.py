"""Figure 11: per-lookup cycle quartiles bucketed by binary radix depth.

The paper's candlestick plots: for each algorithm, the 5/25/50/75/95th
percentiles of per-lookup cycles as a function of how deep the binary
radix search had to go.  The headline observation (Section 4.6): "the
95th percentiles of Poptrie18 are no more than 172 cycles for any binary
radix depth while those of SAIL and DXR exceed 234 cycles at the binary
radix depth of 24 and 25."
"""

import numpy as np

from benchmarks.conftest import CYCLE_ALGORITHMS, CYCLE_SCALE, emit

from repro.bench.report import Table
from repro.cachesim.cycles import cycles_by_radix_depth, depth_quartiles


def test_figure11_cycles_by_depth(benchmark, cycle_data, cycle_query_keys):
    ds, roster, cycles = cycle_data

    benchmark.pedantic(
        lambda: cycles_by_radix_depth(
            cycles["Poptrie18"][:3000], cycle_query_keys[:3000], ds.rib
        ),
        rounds=1,
        iterations=1,
    )

    # Buckets with too few lookups are statistically meaningless (a depth-30
    # IGP corner visited twice shows compulsory-miss noise the paper's 2^24
    # lookups never see); the candlestick comparison uses populated buckets.
    MIN_BUCKET = 200

    worst_p95 = {}
    deep_p95 = {}
    for name in CYCLE_ALGORITHMS:
        buckets = cycles_by_radix_depth(cycles[name], cycle_query_keys, ds.rib)
        rows = depth_quartiles(buckets)
        table = Table(
            ["radix depth", "p5", "p25", "p50", "p75", "p95", "n"],
            title=(
                f"Figure 11 ({name}): cycles by binary radix depth "
                f"(scale={CYCLE_SCALE})"
            ),
        )
        sizes = {}
        for (depth, p5, p25, p50, p75, p95), values in zip(
            rows, (buckets[d] for d in sorted(buckets))
        ):
            table.add_row([depth, p5, p25, p50, p75, p95, len(values)])
            sizes[depth] = len(values)
        emit(table, f"figure11_{name.replace(' ', '_').lower()}")
        # Aggregate the deep end (depth > 18, where the algorithms differ).
        deep = np.concatenate(
            [v for d, v in buckets.items() if d > 18 and len(v) >= MIN_BUCKET]
            or [np.array([0])]
        )
        deep_p95[name] = float(np.percentile(deep, 95))
        worst_p95[name] = max(
            p95 for depth, *_, p95 in rows if sizes[depth] >= MIN_BUCKET
        )

    # Poptrie18's worst per-depth p95 stays below SAIL's (the paper's
    # bounded-tail claim: ≤ 172 cycles at any depth vs > 234 for SAIL/DXR).
    assert worst_p95["Poptrie18"] < worst_p95["SAIL"]
    # On the deep lookups specifically, Poptrie18's p95 is at least as good
    # as both DXRs (paper: DXR exceeds 234 cycles at depth 24–25).
    assert deep_p95["Poptrie18"] <= deep_p95["D18R"] * 1.05
    assert deep_p95["Poptrie18"] <= deep_p95["D16R"] * 1.05
