"""Ablation: what each cycle-model component contributes.

The paper measures cycles with PMCs; our substitute composes caches,
TLBs and branch mispredictions (DESIGN.md).  This benchmark re-runs the
Poptrie-vs-DXR comparison with components switched off, showing that

- the *cache hierarchy alone* already produces SAIL's fat tail, and
- the *misprediction term* is what separates DXR's deep lookups from
  Poptrie's (the paper's "binary search stage" explanation), and
- the *TLB term* mostly affects the structures with multi-MiB arrays.
"""

import numpy as np
from dataclasses import replace

from benchmarks.conftest import CYCLE_SCALE, emit

from repro.bench.report import Table
from repro.cachesim import CycleModel, HASWELL_I7_4770K
from repro.data.xorshift import xorshift32_array

ALGORITHMS = ("SAIL", "D18R", "Poptrie18")

VARIANTS = {
    "full model": HASWELL_I7_4770K,
    "no TLB": replace(HASWELL_I7_4770K, tlb=None),
    "no mispredicts": replace(HASWELL_I7_4770K, mispredict_penalty=0),
    "caches only": replace(
        HASWELL_I7_4770K, tlb=None, mispredict_penalty=0
    ),
}


def test_ablation_cycle_model_components(benchmark, cycle_data):
    _, roster, _ = cycle_data  # full-scale structures (REPRO_CYCLE_SCALE)
    warm = [int(x) for x in xorshift32_array(300_000, seed=3)]
    keys = [int(x) for x in xorshift32_array(50_000, seed=4)]

    table = Table(
        ["Variant"] + [f"{a} mean" for a in ALGORITHMS]
        + [f"{a} p99" for a in ALGORITHMS],
        title=f"Ablation: cycle-model components (scale={CYCLE_SCALE})",
    )
    means = {}
    p99s = {}
    for label, profile in VARIANTS.items():
        row = [label]
        tails = []
        for name in ALGORITHMS:
            model = CycleModel(profile)
            model.measure(roster[name], warm, warmup=0)
            cycles = model.measure(roster[name], keys, warmup=0)
            means[(label, name)] = float(cycles.mean())
            p99s[(label, name)] = float(np.percentile(cycles, 99))
            row.append(means[(label, name)])
            tails.append(p99s[(label, name)])
        table.add_row(row + tails)
    emit(table, "ablation_cycle_model")

    # Each component only ever adds cost.
    for name in ALGORITHMS:
        assert means[("caches only", name)] <= means[("full model", name)]
    # The misprediction term hits DXR harder than Poptrie (binary search
    # vs popcount indexing) — paper Section 4.6's explanation.
    dxr_penalty = means[("full model", "D18R")] - means[("no mispredicts", "D18R")]
    poptrie_penalty = (
        means[("full model", "Poptrie18")]
        - means[("no mispredicts", "Poptrie18")]
    )
    assert dxr_penalty > poptrie_penalty
    # SAIL's tail is cache-driven: it is fat even with caches only.
    assert p99s[("caches only", "SAIL")] > p99s[("caches only", "Poptrie18")]

    benchmark.pedantic(
        lambda: CycleModel(HASWELL_I7_4770K).measure(
            roster["Poptrie18"], keys[:2000], warmup=200
        ),
        rounds=1,
        iterations=1,
    )
