"""Table 5: scalability on the synthetic large RIBs (SYN1/SYN2).

The paper's structural-scalability result, reproduced at full table scale
(structural encoding limits are absolute, so this module always loads the
SYN tables at scale 1.0 regardless of REPRO_SCALE):

- SAIL compiles SYN1 but *cannot compile* SYN2 ("C16[i] in SAIL is
  encoded in the 15 bits of BCN[i], but it exceeds 2^15") → "N/A";
- unmodified DXR exceeds its 2^19-range limit on every SYN table; the
  paper's modified variant (2^20, flag bit absorbed) compiles;
- Poptrie compiles everything and keeps a cache-sized footprint.
"""

import pytest

from benchmarks.conftest import emit

from repro.bench.harness import measure_rate_batch
from repro.bench.report import Table
from repro.core.aggregate import aggregated_rib
from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.data.datasets import load_dataset
from repro.data.traffic import random_addresses
from repro.errors import StructuralLimitError
from repro.lookup.dxr import Dxr
from repro.lookup.sail import Sail

SYN_TABLES = ("SYN1-Tier1-A", "SYN1-Tier1-B", "SYN2-Tier1-A", "SYN2-Tier1-B")


@pytest.fixture(scope="module")
def syn_datasets():
    return {name: load_dataset(name, scale=1.0) for name in SYN_TABLES}


def _try(builder):
    try:
        return builder(), None
    except StructuralLimitError as error:
        return None, str(error)


def test_table5_structural_scalability(benchmark, syn_datasets):
    keys = random_addresses(100_000, seed=55)
    table = Table(
        ["Algorithm"] + [f"{name} ({len(syn_datasets[name])})"
                         for name in SYN_TABLES],
        title="Table 5: batch Mlps on synthetic large RIBs (scale=1.0; "
        "N/A = structural limit)",
    )
    outcomes = {}
    rows = {
        "SAIL": lambda rib, fib: Sail.from_rib(rib),
        "D18R": lambda rib, fib: Dxr.from_rib(rib, s=18, modified=False),
        "D18R (modified)": lambda rib, fib: Dxr.from_rib(rib, s=18, modified=True),
        "Poptrie18": lambda rib, fib: Poptrie.from_rib(
            aggregated_rib(rib), PoptrieConfig(s=18), fib_size=fib
        ),
    }
    for algorithm, build in rows.items():
        cells = []
        for name in SYN_TABLES:
            ds = syn_datasets[name]
            fib_size = max(hop for _, hop in ds.rib.routes()) + 1
            structure, error = _try(lambda: build(ds.rib, fib_size))
            outcomes[(algorithm, name)] = (structure, error)
            if structure is None:
                cells.append(None)
            else:
                cells.append(measure_rate_batch(structure, keys, repeats=1).mlps)
        table.add_row([algorithm] + cells)
    emit(table, "table5_scalability")

    # SAIL: OK on SYN1, N/A on SYN2 (the paper's 15-bit chunk-id failure).
    for name in ("SYN1-Tier1-A", "SYN1-Tier1-B"):
        assert outcomes[("SAIL", name)][0] is not None, name
    for name in ("SYN2-Tier1-A", "SYN2-Tier1-B"):
        structure, error = outcomes[("SAIL", name)]
        assert structure is None and "2^15" in error, name

    # Unmodified DXR exceeds 2^19 ranges on every SYN table; the modified
    # format compiles everywhere.
    for name in SYN_TABLES:
        assert outcomes[("D18R", name)][0] is None, name
        assert outcomes[("D18R (modified)", name)][0] is not None, name

    # Poptrie compiles everything and stays cache-resident.
    for name in SYN_TABLES:
        poptrie = outcomes[("Poptrie18", name)][0]
        assert poptrie is not None
        assert poptrie.memory_bytes() < 8 << 20, name

    poptrie = outcomes[("Poptrie18", "SYN2-Tier1-A")][0]
    benchmark.pedantic(
        lambda: poptrie.lookup_batch(keys[:65536]), rounds=3, iterations=1
    )
