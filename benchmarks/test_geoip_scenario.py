"""The GeoIP value-plane scenario (docs/VALUES.md): BENCH_geoip.json.

Not a figure from the paper — this benchmarks the generalized value
plane: a country-code table built raw, with the paper's exact
aggregation, and with same-value subtree pruning at Poptrie's stride,
checking that (a) aggregation exploits the workload's low value entropy
(fewer routes and internal nodes), and (b) value ids flow through the
branchless kernels unchanged (scalar/kernel fingerprint agreement — the
acceptance gate for the value-plane redesign).
"""

import json

from benchmarks.conftest import RESULTS_DIR, SCALE, emit

from repro.bench.geoip_scenario import geoip_scenario
from repro.bench.report import Table

N_PREFIXES = max(2000, int(1_000_000 * SCALE))
N_QUERIES = max(5000, int(2_500_000 * SCALE))


def test_geoip_value_plane_scenario():
    payload = geoip_scenario(
        n_prefixes=N_PREFIXES, queries=N_QUERIES, seed=1, spans=(6,)
    )

    table = Table(
        ["Aggregation", "routes", "inodes", "leaves", "KiB", "mean depth",
         "oracle"],
        title=(
            f"GeoIP value plane: {payload['algorithm']} over "
            f"{payload['prefixes']} routes, {payload['countries']} "
            f"countries (scale={SCALE})"
        ),
    )
    for row in payload["builds"]:
        table.add_row([
            row["aggregation"], row["routes"], row["inodes"], row["leaves"],
            row["memory_bytes"] / 1024, row["mean_depth"],
            {True: "ok", False: "MISMATCH", None: "-"}[row["oracle_match"]],
        ])
    emit(table, "geoip_scenario")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_geoip.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    raw, simple, uniform = payload["builds"][:3]
    # The acceptance criteria: aggregation reduces node counts...
    assert simple["routes"] < raw["routes"]
    assert simple["inodes"] < raw["inodes"]
    assert uniform["inodes"] < raw["inodes"]
    # ...and the kernels agree with the scalar oracle on valued tables.
    assert payload["oracle_agreement"] is True
    for row in payload["builds"]:
        assert row["values"] == {
            "kind": "cc", "count": payload["countries"]
        }
