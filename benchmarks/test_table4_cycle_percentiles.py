"""Table 4: mean / 50th / 75th / 95th / 99th percentile cycles per lookup.

The paper's per-lookup cycle statistics for random traffic on
REAL-Tier1-A (we reproduce the -A table; the paper shows -B behaves the
same).  Paper values for reference:

    SAIL      57.43  22  76  279  299
    D16R      60.92  44  49  189  255
    D18R      54.84  46  48  154  207
    Poptrie16 54.58  43  48  150  192
    Poptrie18 53.59  46  48  150  169

Asserted shape: all five means are near-ties (the paper's spread is ~13 %)
but the tail ordering is decisive — Poptrie18 has the best 99th
percentile, SAIL the worst, with DXR in between; the paper's Section 4.6
reads the same ranking off the 95th/99th columns.
"""

from benchmarks.conftest import CYCLE_ALGORITHMS, CYCLE_SCALE, emit

from repro.bench.report import Table
from repro.cachesim.cycles import percentile_summary

PAPER_ROWS = {
    "SAIL": (57.43, 22, 76, 279, 299),
    "D16R": (60.92, 44, 49, 189, 255),
    "D18R": (54.84, 46, 48, 154, 207),
    "Poptrie16": (54.58, 43, 48, 150, 192),
    "Poptrie18": (53.59, 46, 48, 150, 169),
}


def test_table4_cycle_percentiles(benchmark, cycle_data):
    _, roster, cycles = cycle_data
    benchmark.pedantic(
        lambda: percentile_summary(cycles["Poptrie18"]), rounds=3, iterations=1
    )

    table = Table(
        ["Algorithm", "Mean", "50th", "75th", "95th", "99th",
         "paper mean", "paper 99th"],
        title=(
            "Table 4: per-lookup cycles, random traffic, REAL-Tier1-A "
            f"(scale={CYCLE_SCALE})"
        ),
    )
    summaries = {}
    for name in CYCLE_ALGORITHMS:
        summary = percentile_summary(cycles[name])
        summaries[name] = summary
        paper = PAPER_ROWS[name]
        table.add_row(
            [name, summary.mean, summary.p50, summary.p75, summary.p95,
             summary.p99, paper[0], paper[4]]
        )
    emit(table, "table4_cycle_percentiles")

    p99 = {name: s.p99 for name, s in summaries.items()}
    means = {name: s.mean for name, s in summaries.items()}

    # Tail ordering (the decisive Section 4.6 result).
    assert p99["Poptrie18"] <= min(p99.values()) + 1e-9
    assert p99["SAIL"] >= max(p99.values()) - 1e-9
    assert p99["Poptrie18"] < p99["D18R"] <= p99["SAIL"]

    # Means are near-ties, as in the paper (max spread there ≈ 13 %).
    spread = max(means.values()) / min(means.values())
    assert spread < 1.6, means

    # Magnitudes land in the paper's regime (tens of cycles, not hundreds).
    assert 20 < means["Poptrie18"] < 120
