"""Section 4.5's locality patterns: sequential and repeated traffic.

The paper: "for sequential, all algorithms effectively utilized the CPU
cache"; SAIL is fastest there (1264 Mlps vs Poptrie18's 1122 on
REAL-Tier1-B) because it replaces instructions with memory accesses that
all hit; and every algorithm speeds up dramatically versus random.

Asserted shape (cycle model on REAL-Tier1-B): sequential ≪ random for
every algorithm; SAIL's sequential mean is at least as good as
Poptrie18's; repeated sits between sequential and random.
"""

import numpy as np

from benchmarks.conftest import SCALE, dataset, emit, measure_cycles, roster_for

from repro.bench.report import Table
from repro.data.traffic import (
    random_addresses,
    repeated_addresses,
    sequential_addresses,
)

ALGORITHMS = ("SAIL", "D16R", "Poptrie16", "D18R", "Poptrie18")


def test_section45_locality_patterns(benchmark):
    roster = roster_for("REAL-Tier1-B", ALGORITHMS)
    patterns = {
        "random": random_addresses(60_000, seed=45),
        "repeated": repeated_addresses(60_000, repeat=16, seed=45),
        "sequential": sequential_addresses(60_000, start=0x0A000000),
    }
    table = Table(
        ["Algorithm", "random cycles", "repeated cycles", "sequential cycles"],
        title=f"Section 4.5: mean cycles by traffic pattern (scale={SCALE})",
    )
    means = {}
    for name in ALGORITHMS:
        structure = roster[name]
        row = [name]
        for pattern, keys in patterns.items():
            key_list = [int(k) for k in keys]
            cycles = measure_cycles(
                structure, key_list[:20_000], key_list[20_000:]
            )
            means[(name, pattern)] = float(cycles.mean())
            row.append(means[(name, pattern)])
        table.add_row(row)
    emit(table, "section45_locality")

    for name in ALGORITHMS:
        # Locality makes every structure cheaper, in the published order.
        assert means[(name, "sequential")] < means[(name, "random")], name
        assert means[(name, "repeated")] <= means[(name, "random")] * 1.05, name

    # SAIL ties or beats Poptrie when everything is cache-hot (its lookups
    # are pure array reads with the fewest instructions).
    assert (
        means[("SAIL", "sequential")]
        <= means[("Poptrie18", "sequential")] * 1.10
    )

    structure = roster["Poptrie18"]
    sequential = [int(k) for k in patterns["sequential"][:5000]]
    benchmark.pedantic(
        lambda: [structure.lookup(k) for k in sequential],
        rounds=3,
        iterations=1,
    )
