"""Served-system benchmark: throughput and latency through the TCP service.

Unlike every other module here, this one measures the *deployed* shape of
the library — asyncio server, wire protocol, request coalescing and one
mid-run RCU hot swap — and persists ``BENCH_server.json`` under
``benchmarks/results/`` so successive PRs can compare the served numbers
(throughput, p50/p99/p999 latency) like-for-like.  The CI smoke job
produces the same artifact cross-process via ``repro serve`` +
``repro loadgen``.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import RESULTS_DIR

from repro.bench.server_scenario import emit_server_bench

#: Scaled down like the other benchmarks; REPRO_SERVER_DURATION stretches
#: the measured window for steadier percentiles.
DURATION = float(os.environ.get("REPRO_SERVER_DURATION", "2.0"))
RATE = float(os.environ.get("REPRO_SERVER_RATE", "2000"))


def test_server_throughput_artifact():
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_server.json"
    result = emit_server_bench(
        path=str(path),
        routes=20_000,
        duration=DURATION,
        rate=RATE,
        connections=4,
        batch=16,
        seed=7,
        swap_mid_run=True,
    )
    print()
    print(
        f"server throughput: {result['throughput_rps']:.0f} req/s "
        f"({result['throughput_klps']:.1f} klps), "
        f"p50 {result['latency_us']['p50']:.0f} us, "
        f"p99 {result['latency_us']['p99']:.0f} us, "
        f"p999 {result['latency_us']['p999']:.0f} us"
    )

    # The scenario's contract: the hot swap costs zero errored responses.
    assert result["errors"] == 0
    assert result["loadgen"]["mismatched"] == 0
    assert result["swap_generation"] == 1
    assert result["server"]["max_coalesced"] >= 1
    assert result["throughput_rps"] > 0

    # The artifact on disk is the same JSON the test saw.
    persisted = json.loads(path.read_text())
    assert persisted["scenario"] == "server_throughput"
    assert persisted["latency_us"].keys() >= {"p50", "p99", "p999"}
