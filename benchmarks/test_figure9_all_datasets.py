"""Figure 9: lookup rate for random addresses, 7 algorithms × 35 tables.

The paper's headline sweep: Radix, Tree BitMap, SAIL, D16R, Poptrie16,
D18R, Poptrie18 across every RouteViews and REAL table.  We measure the
numpy batch engines (interpreter-throughput proxy) and record the memory
footprints; the latency-model ordering that mirrors the paper's Mlps
ranking is produced by the Figure 10/11 and Table 4 benchmarks.

Asserted shape: the popcount/array structures (SAIL, DXR, Poptrie) beat
the pointer-chasing structures (Radix, Tree BitMap) by large factors on
every dataset — the paper's 3.5×–46× gaps — and Poptrie's footprint stays
cache-sized on every table.
"""

from benchmarks.conftest import SCALE, dataset, emit, roster_for

from repro.bench.harness import measure_rate_batch
from repro.lookup.registry import STANDARD_ALGORITHMS
from repro.bench.report import Table
from repro.data.datasets import EVALUATION_TABLES


def test_figure9_all_datasets(benchmark, random_queries):
    queries = random_queries[:50_000]
    table = Table(
        ["Dataset"] + list(STANDARD_ALGORITHMS),
        title=f"Figure 9: batch-engine Mlps, random pattern (scale={SCALE})",
    )
    slow_fast_gaps = []
    for name in EVALUATION_TABLES:
        roster = roster_for(name, STANDARD_ALGORITHMS)
        rates = {}
        for algorithm, structure in roster.items():
            if structure is None:
                rates[algorithm] = None
                continue
            rates[algorithm] = measure_rate_batch(
                structure, queries, repeats=1
            ).mlps
        table.add_row([name] + [rates[a] for a in STANDARD_ALGORITHMS])
        scalar_based = min(rates["Radix"], rates["Tree BitMap"])
        array_based = max(rates["SAIL"], rates["D18R"], rates["Poptrie18"])
        slow_fast_gaps.append(array_based / scalar_based)
        # Poptrie stays within the 8 MiB L3 on every table (the property
        # its Figure 9 rates rest on).
        assert roster["Poptrie18"].memory_bytes() < 8 << 20, name
    emit(table, "figure9_all_datasets")

    assert all(gap > 3 for gap in slow_fast_gaps), min(slow_fast_gaps)

    ds = roster_for("REAL-Tier1-A", STANDARD_ALGORITHMS)["Poptrie18"]
    benchmark.pedantic(
        lambda: ds.lookup_batch(queries[:65536]), rounds=3, iterations=1
    )
