"""Extension benchmark: the Section 2 lineage on one table.

Not a paper table — the paper dismisses these approaches in prose — but
the quantified version of its Section 2 narrative: each generation of
structures trades memory against memory-access count, and Poptrie sits
on the Pareto frontier of both.

Asserted shape (cycle model, scaled table):
- the radix/Patricia generation needs an order of magnitude more memory
  accesses per lookup than the compressed-array generation;
- Lulea and Poptrie are the two smallest structures (bitmap run
  compression), with Poptrie's bounded access count beating Lulea's
  three fixed levels on tail cycles at depth;
- the uncompressed multibit trie is the largest trie by far — what the
  vector/leafvec compression is worth.
"""

import numpy as np

from benchmarks.conftest import SCALE, dataset, emit, measure_cycles

from repro.bench.report import Table
from repro.core.aggregate import aggregated_rib
from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.data.xorshift import xorshift32_array
from repro.lookup.bloom import BloomLpm
from repro.lookup.bsearch_lengths import BinarySearchLengths
from repro.lookup.lulea import Lulea
from repro.lookup.multibit import MultibitTrie
from repro.lookup.patricia import PatriciaTrie
from repro.lookup.radix import RadixLookup
from repro.mem.layout import AccessTrace


def test_related_work_lineage(benchmark):
    ds = dataset("REAL-Tier1-A")
    rib = ds.rib
    structures = {
        "Radix (1968)": RadixLookup.from_rib(rib),
        "Patricia (1968/BSD)": PatriciaTrie.from_rib(rib),
        "Lulea (1997)": Lulea.from_rib(rib),
        "BSearch-Lengths (1997)": BinarySearchLengths.from_rib(rib),
        "Multibit k=6 (1999)": MultibitTrie.from_rib(rib, k=6),
        "Bloom-LPM (2006)": BloomLpm.from_rib(rib),
        "Poptrie18 (2015)": Poptrie.from_rib(
            aggregated_rib(rib), PoptrieConfig(s=18),
            fib_size=len(ds.fib) + 1,
        ),
    }
    warm = [int(x) for x in xorshift32_array(60_000, seed=3)]
    keys = [int(x) for x in xorshift32_array(20_000, seed=4)]

    table = Table(
        ["Structure", "KiB", "accesses/lookup", "mean cycles"],
        title=f"Section 2 lineage on REAL-Tier1-A (scale={SCALE})",
    )
    accesses = {}
    for name, structure in structures.items():
        trace = AccessTrace()
        total = 0
        for key in keys[:2000]:
            trace.reset()
            structure.lookup_traced(key, trace)
            total += len(trace.accesses)
        accesses[name] = total / 2000
        cycles = measure_cycles(structure, warm, keys)
        table.add_row(
            [
                name,
                structure.memory_bytes() / 1024,
                accesses[name],
                float(cycles.mean()),
            ]
        )
    emit(table, "related_work_lineage")

    # Generational gap in memory accesses per lookup.
    assert accesses["Radix (1968)"] > 4 * accesses["Poptrie18 (2015)"]
    assert accesses["Patricia (1968/BSD)"] > 2 * accesses["Poptrie18 (2015)"]
    # Poptrie and Lulea are the bitmap-compressed small ones.
    mem = {name: s.memory_bytes() for name, s in structures.items()}
    assert mem["Lulea (1997)"] < mem["Multibit k=6 (1999)"]
    # The uncompressed multibit trie dwarfs the compressed Poptrie0-style
    # core (compare without the 1 MiB direct array: use node counts).
    poptrie0 = Poptrie.from_rib(aggregated_rib(rib), PoptrieConfig(s=0))
    assert poptrie0.memory_bytes() < mem["Multibit k=6 (1999)"] / 2

    benchmark.pedantic(
        lambda: [structures["Poptrie18 (2015)"].lookup(k) for k in keys[:3000]],
        rounds=3,
        iterations=1,
    )
