"""Table 2: effect of Poptrie's extensions and the direct-pointing width.

Rows: basic (no leafvec, no aggregation), leafvec (no aggregation), and
full Poptrie (leafvec + route aggregation), each at s = 0, 16, 18.
Columns: # of internal nodes, # of leaves, memory footprint, compilation
time, and the lookup rate for the random pattern.
"""

import time

from benchmarks.conftest import SCALE, dataset, emit

from repro.bench.harness import measure_rate_batch
from repro.bench.report import Table
from repro.core.aggregate import aggregated_rib
from repro.core.poptrie import Poptrie, PoptrieConfig


def test_table2_poptrie_variants(benchmark, random_queries):
    ds = dataset("REAL-Tier1-A")
    aggregated = aggregated_rib(ds.rib)
    fib_size = len(ds.fib) + 1

    benchmark.pedantic(
        lambda: Poptrie.from_rib(ds.rib, PoptrieConfig(s=18), fib_size=fib_size),
        rounds=3,
        iterations=1,
    )

    table = Table(
        ["Variant", "s", "# inodes", "# leaves", "Mem MiB", "Compile ms", "Mlps"],
        title=f"Table 2: Poptrie variants on REAL-Tier1-A (scale={SCALE})",
    )
    results = {}
    for label, rib, use_leafvec in (
        ("basic", ds.rib, False),
        ("leafvec", ds.rib, True),
        ("leafvec+aggregation", aggregated, True),
    ):
        for s in (0, 16, 18):
            config = PoptrieConfig(s=s, use_leafvec=use_leafvec)
            start = time.perf_counter()
            trie = Poptrie.from_rib(rib, config, fib_size=fib_size)
            compile_ms = (time.perf_counter() - start) * 1000
            rate = measure_rate_batch(trie, random_queries, repeats=1)
            results[(label, s)] = trie
            table.add_row(
                [
                    label,
                    s,
                    trie.inode_count,
                    trie.leaf_count,
                    trie.memory_mib(),
                    compile_ms,
                    rate.mlps,
                ]
            )
    emit(table, "table2_variants")

    # Paper: leafvec removes > 90 % of leaves ("reduces more than 90 % of
    # leaves as we will see in Section 4.3").
    for s in (0, 16, 18):
        basic = results[("basic", s)]
        leafvec = results[("leafvec", s)]
        assert leafvec.leaf_count < 0.1 * basic.leaf_count
        # Table 2: leafvec cuts the total footprint by ~69–79 %.
        assert leafvec.memory_bytes() < basic.memory_bytes()

    # Aggregation shrinks the structure further (Table 2's bottom block).
    for s in (0, 16, 18):
        assert (
            results[("leafvec+aggregation", s)].memory_bytes()
            <= results[("leafvec", s)].memory_bytes()
        )

    # s = 18 costs < 1 MiB more than s = 16 yet shrinks node counts
    # (Table 2: 2.75 -> 2.40 MiB via fewer nodes at a bigger direct array).
    full16 = results[("leafvec+aggregation", 16)]
    full18 = results[("leafvec+aggregation", 18)]
    assert full18.inode_count < full16.inode_count
