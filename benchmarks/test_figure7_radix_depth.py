"""Figure 7: heat map of binary radix depth vs matched prefix length.

The paper computes, for all 2^32 addresses on REAL-Tier1-A, how many bits
the radix search examines versus the length of the prefix it finally
matches, showing a mass well above the diagonal (deciding a short match
often requires a deep search).  We sample the address space and print the
same matrix bucketed 4 bits a side.
"""

import numpy as np

from benchmarks.conftest import dataset, emit

from repro.bench.report import Table
from repro.data.traffic import random_addresses


def test_figure7_depth_heatmap(benchmark):
    rib = dataset("REAL-Tier1-A").rib
    keys = random_addresses(60_000, seed=7)

    def depth_matrix():
        matrix = np.zeros((9, 9), dtype=np.int64)
        for key in keys:
            _, matched, depth = rib.lookup_with_depth(int(key))
            matrix[min(matched // 4, 8), min(depth // 4, 8)] += 1
        return matrix

    matrix = benchmark.pedantic(depth_matrix, rounds=1, iterations=1)

    table = Table(
        ["match len \\ depth"] + [f"{4*i}-{4*i+3}" for i in range(9)],
        title="Figure 7: binary radix depth vs matched prefix length "
        "(counts, 4-bit buckets, REAL-Tier1-A)",
    )
    for row in range(9):
        table.add_row([f"{4*row}-{4*row+3}"] + [int(x) for x in matrix[row]])
    emit(table, "figure7_radix_depth")

    # The figure's key observation: for a meaningful share of addresses the
    # search runs deeper than the matched prefix length (hole punching).
    above_diagonal = sum(
        int(matrix[r, c]) for r in range(9) for c in range(9) if c > r
    )
    assert above_diagonal > 0.03 * matrix.sum()

    # And the /24 row dominates the deep end, as in the published heat map.
    deep_columns = matrix[:, 5:]
    assert deep_columns[5].sum() >= np.median(deep_columns.sum(axis=1))
