"""Shared infrastructure for the paper-reproduction benchmarks.

Each module in this directory regenerates one table or figure from the
paper's Section 4 (see DESIGN.md's experiment index).  Benchmarks run the
datasets at ``REPRO_SCALE`` (default 0.02, i.e. ~10k-route tables, so the
whole suite finishes in minutes of interpreter time); set ``REPRO_SCALE=1.0``
to reproduce the published table sizes — the structural results in
EXPERIMENTS.md were recorded at full scale.

Every rendered table is printed *and* written to ``benchmarks/results/``
so EXPERIMENTS.md can quote the artifacts.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional

import pytest

from repro.lookup.registry import standard_roster
from repro.bench.report import Table
from repro.data.datasets import load_dataset

#: Dataset scale for the benchmark run (1.0 = published sizes).
SCALE = float(os.environ.get("REPRO_SCALE", "0.02"))

#: Scale for the cycle-model analyses (Figures 10/11, Tables 4/5, §5).
#: These depend on absolute footprint-vs-cache-size ratios and structural
#: encoding limits, so they default to the published table sizes even when
#: the throughput benchmarks run scaled down.
CYCLE_SCALE = float(os.environ.get("REPRO_CYCLE_SCALE", "1.0"))

#: Query-stream sizes, scaled up alongside the tables.
N_QUERIES = int(os.environ.get("REPRO_QUERIES", "100000"))
N_CYCLE_QUERIES = int(os.environ.get("REPRO_CYCLE_QUERIES", "100000"))
#: The warm pass must touch the structures' working sets to steady state —
#: at full table scale that takes several hundred thousand random keys
#: (the paper's loop does 2^24 and measures all of them; we measure after
#: the caches converge instead).
N_CYCLE_WARMUP = int(os.environ.get("REPRO_CYCLE_WARMUP", "500000"))

RESULTS_DIR = Path(__file__).parent / "results"

_ROSTERS: Dict[tuple, dict] = {}


def dataset(name: str):
    return load_dataset(name, scale=SCALE)


def roster_for(name: str, algorithms, modified_dxr: bool = False) -> dict:
    """Build (and cache per-session) the algorithm roster for a dataset."""
    key = (name, tuple(algorithms), modified_dxr)
    if key not in _ROSTERS:
        _ROSTERS[key] = standard_roster(
            dataset(name).rib, names=algorithms, modified_dxr=modified_dxr
        )
    return _ROSTERS[key]


def emit(table: Table, artifact: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/.

    When observability is enabled (``REPRO_OBS=1`` or an explicit
    ``obs.enable()``), the run's Prometheus metrics dump is persisted
    alongside the table as ``<artifact>.metrics.txt``.
    """
    from repro.bench.report import metrics_dump

    text = table.render()
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    header = f"# scale={SCALE}\n"
    (RESULTS_DIR / f"{artifact}.txt").write_text(header + text + "\n")
    metrics = metrics_dump()
    if metrics:
        (RESULTS_DIR / f"{artifact}.metrics.txt").write_text(metrics)


@pytest.fixture(scope="session")
def random_queries():
    from repro.data.traffic import random_addresses

    return random_addresses(N_QUERIES, seed=2463534242)


@pytest.fixture(scope="session")
def cycle_query_keys():
    from repro.data.xorshift import xorshift32_array

    return [int(x) for x in xorshift32_array(N_CYCLE_QUERIES, seed=99)]


@pytest.fixture(scope="session")
def cycle_warmup_keys():
    from repro.data.xorshift import xorshift32_array

    return [int(x) for x in xorshift32_array(N_CYCLE_WARMUP, seed=5)]


def measure_cycles(structure, warmup_keys, keys, profile=None):
    """Steady-state per-lookup cycles for one structure."""
    from repro.cachesim import CycleModel, HASWELL_I7_4770K

    model = CycleModel(profile or HASWELL_I7_4770K)
    model.measure(structure, warmup_keys, warmup=0)  # warm pass, discarded
    return model.measure(structure, keys, warmup=0)


#: The algorithm set of the paper's cycle analyses (Figures 10/11, Table 4).
CYCLE_ALGORITHMS = ("SAIL", "D16R", "Poptrie16", "D18R", "Poptrie18")


@pytest.fixture(scope="session")
def cycle_data(cycle_warmup_keys, cycle_query_keys):
    """One full-scale cycle measurement shared by every cycle benchmark:
    ``(dataset, roster, {algorithm: per-lookup cycle array})``."""
    ds = load_dataset("REAL-Tier1-A", scale=CYCLE_SCALE)
    roster = standard_roster(ds.rib, names=CYCLE_ALGORITHMS)
    cycles = {
        name: measure_cycles(roster[name], cycle_warmup_keys, cycle_query_keys)
        for name in CYCLE_ALGORITHMS
    }
    return ds, roster, cycles
