"""Figure 12: lookup rate for the real traffic trace on REAL-RENET.

Two published observations are asserted:

1. Poptrie's and DXR's rates *degrade* on the trace relative to the
   random pattern, because trace traffic hits IGP routes deeper than the
   direct-pointing stage ("32.5 % of the packets in real-trace ... have
   the binary radix depth more than 18, while for the whole IPv4 address
   space only 22.1 %").  We assert the depth mix shift directly.
2. SAIL performs *relatively better* on the trace than on random traffic
   (destination locality keeps its big arrays cache-resident), measured
   here with the cycle model's mean cycles per lookup.
"""

import numpy as np

from benchmarks.conftest import (
    CYCLE_SCALE,
    SCALE,
    dataset,
    emit,
    measure_cycles,
    roster_for,
)

from repro.bench.harness import measure_rate_batch
from repro.lookup.registry import standard_roster
from repro.bench.report import Table
from repro.data.datasets import load_dataset
from repro.data.traffic import random_addresses, real_trace

ALGORITHMS = ("Tree BitMap", "SAIL", "D16R", "Poptrie16", "D18R", "Poptrie18")


def test_figure12_real_trace(benchmark, random_queries):
    ds = dataset("REAL-RENET")
    roster = roster_for("REAL-RENET", ALGORITHMS)
    trace = real_trace(ds.rib, 120_000, seed=12)
    random_keys = random_queries[:120_000]

    benchmark.pedantic(
        lambda: roster["Poptrie18"].lookup_batch(trace[:65536]),
        rounds=3,
        iterations=1,
    )

    # Observation 1: the trace's depth mix is deeper than uniform random.
    def depth_fraction(keys, threshold):
        sample = keys[:4000]
        deep = sum(
            1
            for key in sample
            if ds.rib.lookup_with_depth(int(key))[2] > threshold
        )
        return deep / len(sample)

    trace_deep = depth_fraction(trace, 18)
    random_deep = depth_fraction(random_keys, 18)
    assert trace_deep > random_deep, (trace_deep, random_deep)

    # Observation 2: locality flips SAIL's cycle cost below its random-
    # traffic cost; Poptrie barely moves (it was cache-resident already).
    # This comparison is about footprint-vs-L3 ratios, so — like all the
    # cycle analyses — it runs at the published table scale.
    full = load_dataset("REAL-RENET", scale=CYCLE_SCALE)
    full_roster = standard_roster(full.rib, names=ALGORITHMS)
    full_trace = real_trace(full.rib, 100_000, seed=12)
    table = Table(
        ["Algorithm", "batch Mlps (trace)", "mean cycles (trace)",
         "mean cycles (random)"],
        title=(
            f"Figure 12: real-trace on REAL-RENET (rates at scale={SCALE}, "
            f"cycles at scale={CYCLE_SCALE})"
        ),
    )
    warm = [int(k) for k in full_trace[:60_000]]
    trace_keys = [int(k) for k in full_trace[60_000:100_000]]
    rand_warm = [int(k) for k in random_keys[:60_000]]
    rand_keys = [int(k) for k in random_keys[60_000:100_000]]
    sail_gain = poptrie_gain = None
    for name in ALGORITHMS:
        rate = measure_rate_batch(roster[name], trace, repeats=1)
        structure = full_roster[name]
        trace_cycles = float(measure_cycles(structure, warm, trace_keys).mean())
        random_cycles = float(
            measure_cycles(structure, rand_warm, rand_keys).mean()
        )
        table.add_row([name, rate.mlps, trace_cycles, random_cycles])
        if name == "SAIL":
            sail_gain = random_cycles / trace_cycles
        if name == "Poptrie18":
            poptrie_gain = random_cycles / trace_cycles
    emit(table, "figure12_real_trace")

    # SAIL benefits more from trace locality than Poptrie does (Section
    # 4.7: "SAIL performs better in the lookup rate for real-trace than
    # for random ... could take advantage of the CPU cache").
    assert sail_gain is not None and poptrie_gain is not None
    assert sail_gain > poptrie_gain * 0.95, (sail_gain, poptrie_gain)
