"""Figure 8: aggregated lookup rate by the number of cores.

The paper: "the lookup rate of Poptrie can be linearly scaled up to the
number of CPU cores" because the structure is read-shared.  We fork 1–4
workers over one built Poptrie (copy-on-write sharing — no duplication of
the structure, like threads sharing one cache-resident copy) and report
the aggregate rate on REAL-Tier1-A and REAL-Tier1-B.

The linear-scaling assertion needs real parallel hardware; on boxes with
fewer than four usable CPUs (CI containers are often pinned to one core)
the table is still produced — demonstrating the fork-shared, zero-copy
property — but the speedup assertion is skipped and the run records the
environment limitation.
"""

import os

import pytest

from benchmarks.conftest import dataset, emit

from repro.bench.parallel import scaling_curve
from repro.bench.report import Table
from repro.core.aggregate import aggregated_rib
from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.data.traffic import random_addresses


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork-based scaling requires POSIX"
)
def test_figure8_multicore_scaling(benchmark):
    cpus = _usable_cpus()
    keys = random_addresses(200_000, seed=88)
    table = Table(
        ["Dataset", "1 worker", "2 workers", "3 workers", "4 workers"],
        title=(
            "Figure 8: aggregate Mlps vs workers (Poptrie18, fork-shared; "
            f"{cpus} usable CPUs)"
        ),
    )
    curves = {}
    for name in ("REAL-Tier1-A", "REAL-Tier1-B"):
        ds = dataset(name)
        trie = Poptrie.from_rib(
            aggregated_rib(ds.rib), PoptrieConfig(s=18), fib_size=len(ds.fib) + 1
        )
        if name == "REAL-Tier1-A":
            benchmark.pedantic(
                lambda: trie.lookup_batch(keys[:65536]), rounds=3, iterations=1
            )
        results = scaling_curve(trie, keys, max_workers=4)
        curves[name] = [r.mlps for r in results]
        table.add_row([name] + curves[name])
    emit(table, "figure8_multicore")

    if cpus >= 4:
        for name, rates in curves.items():
            # Aggregate throughput grows with workers (sub-linear headroom
            # for fork overhead and shared-cache contention).
            assert rates[3] > rates[0] * 1.8, (name, rates)
            assert rates[1] > rates[0] * 1.2, (name, rates)
    else:
        # Single-core environment: the property still demonstrated is that
        # N forked workers share one structure and none of them crashes or
        # degrades catastrophically (no copy, no locks).
        for name, rates in curves.items():
            assert all(rate > 0 for rate in rates), (name, rates)
