"""Figure 8: aggregated lookup rate by the number of cores.

The paper: "the lookup rate of Poptrie can be linearly scaled up to the
number of CPU cores" because the structure is read-shared.  Measured two
ways over REAL-Tier1-A and REAL-Tier1-B:

- **pool (measured)** — :class:`repro.parallel.WorkerPool`, the real
  data plane behind ``serve --workers N``: the built Poptrie frozen as
  one RPIMG001 image in POSIX shared memory, N worker processes attached
  zero-copy, batches sharded with ordered reassembly.  This number
  includes the pool's IPC and reassembly overhead — the honest
  multicore rate of this implementation.
- **fork (reference)** — bare fork-shared lookup loops with no pool in
  the way (:func:`repro.bench.parallel.measure_parallel_rate`).  This is
  the analytic upper bound plotted alongside, like the dashed linear
  reference in the paper's Figure 8; the gap between the two lines *is*
  the pool overhead.

Both series land in ``figure8_multicore.txt`` and the machine-readable
``BENCH_multicore.json`` (the CI artifact).

The linear-scaling assertion needs real parallel hardware; on boxes with
fewer than four usable CPUs (CI containers are often pinned to one core)
the artifacts are still produced — demonstrating the shared-memory,
zero-copy property — but the speedup assertion is skipped and the run
records the environment limitation.
"""

import json
import os

import pytest

from benchmarks.conftest import RESULTS_DIR, SCALE, dataset, emit

from repro.bench.parallel import pool_scaling_curve, scaling_curve
from repro.bench.report import Table
from repro.core.aggregate import aggregated_rib
from repro.core.poptrie import Poptrie, PoptrieConfig
from repro.data.traffic import random_addresses

MAX_WORKERS = 4


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork-based scaling requires POSIX"
)
def test_figure8_multicore_scaling(benchmark):
    cpus = _usable_cpus()
    keys = random_addresses(200_000, seed=88)
    table = Table(
        ["Dataset", "Series", "1 worker", "2 workers", "3 workers",
         "4 workers"],
        title=(
            "Figure 8: aggregate Mlps vs workers (Poptrie18; "
            f"{cpus} usable CPUs)"
        ),
    )
    payload = {
        "scenario": "multicore",
        "figure": 8,
        "scale": SCALE,
        "cpu_count": cpus,
        "queries": len(keys),
        "max_workers": MAX_WORKERS,
        "datasets": {},
    }
    pool_curves = {}
    for name in ("REAL-Tier1-A", "REAL-Tier1-B"):
        ds = dataset(name)
        trie = Poptrie.from_rib(
            aggregated_rib(ds.rib), PoptrieConfig(s=18), fib_size=len(ds.fib) + 1
        )
        if name == "REAL-Tier1-A":
            benchmark.pedantic(
                lambda: trie.lookup_batch(keys[:65536]), rounds=3, iterations=1
            )
        pool = [
            r.mlps for r in pool_scaling_curve(trie, keys, MAX_WORKERS)
        ]
        reference = [r.mlps for r in scaling_curve(trie, keys, MAX_WORKERS)]
        pool_curves[name] = pool
        table.add_row([name, "pool (measured)"] + pool)
        table.add_row([name, "fork (reference)"] + reference)
        payload["datasets"][name] = {
            "routes": len(ds.rib),
            "pool_mlps": pool,
            "fork_reference_mlps": reference,
            "pool_speedup": [rate / (pool[0] or 1e-9) for rate in pool],
        }
    emit(table, "figure8_multicore")
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_multicore.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    if cpus >= 4:
        for name, rates in pool_curves.items():
            # Aggregate throughput through the *real* pool grows with
            # workers (sub-linear headroom for shard IPC and shared-cache
            # contention).
            assert rates[3] > rates[0] * 1.8, (name, rates)
            assert rates[1] > rates[0] * 1.2, (name, rates)
    else:
        # Single-core environment: the property still demonstrated is
        # that N workers attach to one shared-memory image and answer
        # correctly (no copy, no locks, no crashes); scaling itself
        # cannot show on one core.
        for name, rates in pool_curves.items():
            assert all(rate > 0 for rate in rates), (name, rates)
